// Memory-optimized B+-tree in the BTreeOLC style (Leis & Wang; paper §6.1),
// parameterized over the node size and the synchronization policy:
//
//   * BTreeOlcPolicy            — classic optimistic lock coupling with the
//                                 centralized OptLock everywhere (baseline).
//   * BTreeOptiQlPolicy<L,AOR>  — the paper's adapted protocol (Algorithm
//                                 4): inner nodes keep OptLock, leaves use
//                                 OptiQL (or OptiQL-NOR); writers lock the
//                                 leaf *directly* instead of upgrading, then
//                                 validate the parent. With AOR the
//                                 opportunistic-read window inherited during
//                                 handover stays open through the in-leaf
//                                 search (§6.1 last paragraph).
//   * BTreeCouplingPolicy<L>    — traditional pessimistic lock coupling for
//                                 reader-writer locks (MCS-RW, pthread).
//
// Structural decisions (all standard for memory-optimized B+-trees):
//   * Small nodes (default 256 bytes, Figure 11 sweeps 256B..16KB).
//   * Eager top-down splits: a full node is split while descending, so a
//     writer holds at most two locks and SMOs never propagate upwards.
//   * Deletes remove keys in place without structural merges (BTreeOLC
//     semantics); inner nodes therefore never lose children and node memory
//     is reclaimed only at tree destruction.
//
// Concurrency discipline for optimistic readers: a value read from a node
// (child pointer, key, count) may be torn by a concurrent writer; it is
// therefore *never dereferenced or trusted* until the node's version has
// been re-validated. Counts are additionally clamped to the node capacity
// so even torn reads stay in bounds.
#ifndef OPTIQL_INDEX_BTREE_H_
#define OPTIQL_INDEX_BTREE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/platform.h"
#include "core/optiql.h"
#include "locks/mcs_rw_lock.h"
#include "locks/optlock.h"
#include "locks/pessimistic_ops.h"
#include "locks/shared_mutex_lock.h"
#include "qnode/qnode_pool.h"

namespace optiql {

enum class BTreeProtocol { kOlc, kOptiQl, kCoupling };

struct BTreeOlcPolicy {
  static constexpr BTreeProtocol kProtocol = BTreeProtocol::kOlc;
  static constexpr bool kAdjustableOpRead = false;
  using InnerLock = OptLock;
  using LeafLock = OptLock;
};

template <class QlLock, bool kAor = false>
struct BTreeOptiQlPolicy {
  static constexpr BTreeProtocol kProtocol = BTreeProtocol::kOptiQl;
  static constexpr bool kAdjustableOpRead = kAor;
  using InnerLock = OptLock;
  using LeafLock = QlLock;
};

template <class RwLock>
struct BTreeCouplingPolicy {
  static constexpr BTreeProtocol kProtocol = BTreeProtocol::kCoupling;
  static constexpr bool kAdjustableOpRead = false;
  using InnerLock = RwLock;
  using LeafLock = RwLock;
};

template <class Key, class Value, class SyncPolicy = BTreeOlcPolicy,
          size_t kNodeBytes = 256>
class BTree {
 public:
  static constexpr BTreeProtocol kProtocol = SyncPolicy::kProtocol;
  static constexpr bool kAor = SyncPolicy::kAdjustableOpRead;
  using InnerLock = typename SyncPolicy::InnerLock;
  using LeafLock = typename SyncPolicy::LeafLock;

  BTree() { root_.store(new Leaf(), std::memory_order_release); }

  ~BTree() { FreeSubtree(root_.load(std::memory_order_acquire)); }

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  // Inserts (key, value). Returns false (no change) if the key exists.
  bool Insert(const Key& key, const Value& value) {
    return Write(key, &value, WriteKind::kInsert);
  }

  // Updates the value of an existing key; false if the key is absent.
  bool Update(const Key& key, const Value& value) {
    return Write(key, &value, WriteKind::kUpdate);
  }

  // Inserts or updates.
  void Upsert(const Key& key, const Value& value) {
    Write(key, &value, WriteKind::kUpsert);
  }

  // Removes the key; false if absent. No structural merges.
  bool Remove(const Key& key) {
    return Write(key, nullptr, WriteKind::kRemove);
  }

  // Point lookup; copies the value into `out`.
  bool Lookup(const Key& key, Value& out) const {
    if constexpr (kProtocol == BTreeProtocol::kCoupling) {
      return LookupCoupling(key, out);
    } else {
      return LookupOptimistic(key, out);
    }
  }

  // Ascending range scan starting at `start` (inclusive); copies up to
  // `limit` pairs into `out`. Returns the number copied.
  size_t Scan(const Key& start, size_t limit,
              std::vector<std::pair<Key, Value>>& out) const {
    out.clear();
    if (limit == 0) return 0;
    if constexpr (kProtocol == BTreeProtocol::kCoupling) {
      return ScanCoupling(start, limit, out);
    } else {
      return ScanOptimistic(start, limit, out);
    }
  }

  // Bottom-up bulk load of sorted, unique (key, value) pairs into an EMPTY
  // tree. Not thread-safe (call before sharing the tree). Leaves are filled
  // to ~90% so the first trickle of inserts does not split everywhere at
  // once. Aborts if the tree is non-empty or the input is not strictly
  // ascending.
  void BulkLoad(const std::vector<std::pair<Key, Value>>& pairs) {
    OPTIQL_CHECK(Size() == 0);
    if (pairs.empty()) return;
    const uint16_t per_leaf =
        std::max<uint16_t>(1, static_cast<uint16_t>(kLeafMax * 9 / 10));

    std::vector<NodeBase*> level_nodes;
    std::vector<Key> level_keys;  // Minimum key of each node after [0].
    Leaf* prev = nullptr;
    for (size_t i = 0; i < pairs.size();) {
      Leaf* leaf = new Leaf();
      const size_t take = std::min<size_t>(per_leaf, pairs.size() - i);
      for (size_t j = 0; j < take; ++j) {
        if (i + j > 0) {
          OPTIQL_CHECK(pairs[i + j - 1].first < pairs[i + j].first);
        }
        leaf->keys[j] = pairs[i + j].first;
        leaf->values[j] = pairs[i + j].second;
      }
      leaf->count = static_cast<uint16_t>(take);
      if (prev != nullptr) prev->next = leaf;
      prev = leaf;
      if (!level_nodes.empty()) level_keys.push_back(leaf->keys[0]);
      level_nodes.push_back(leaf);
      i += take;
    }
    size_.store(pairs.size(), std::memory_order_release);

    // Build inner levels until a single root remains.
    uint16_t level = 1;
    const uint16_t per_inner =
        std::max<uint16_t>(2, static_cast<uint16_t>(kInnerMax * 9 / 10));
    while (level_nodes.size() > 1) {
      std::vector<NodeBase*> upper_nodes;
      std::vector<Key> upper_keys;
      for (size_t i = 0; i < level_nodes.size();) {
        Inner* inner = new Inner(level);
        size_t children =
            std::min<size_t>(per_inner + 1u, level_nodes.size() - i);
        // Never leave a single orphan child for the next inner node.
        if (level_nodes.size() - i - children == 1) --children;
        inner->children[0] = level_nodes[i];
        for (size_t j = 1; j < children; ++j) {
          inner->keys[j - 1] = level_keys[i + j - 1];
          inner->children[j] = level_nodes[i + j];
        }
        inner->count = static_cast<uint16_t>(children - 1);
        if (!upper_nodes.empty()) upper_keys.push_back(level_keys[i - 1]);
        upper_nodes.push_back(inner);
        i += children;
      }
      level_nodes.swap(upper_nodes);
      level_keys.swap(upper_keys);
      ++level;
    }
    NodeBase* old_root = root_.load(std::memory_order_acquire);
    root_.store(level_nodes[0], std::memory_order_release);
    FreeSubtree(old_root);  // The initial empty leaf.
  }

  // Number of live keys (exact when quiescent).
  size_t Size() const { return size_.load(std::memory_order_acquire); }

  int Height() const {
    return root_.load(std::memory_order_acquire)->level + 1;
  }

  // Single-threaded structural check for tests: sortedness, separator
  // bounds, level consistency and key count. Aborts on violation.
  void CheckInvariants() const {
    size_t keys = 0;
    CheckSubtree(root_.load(std::memory_order_acquire), nullptr, nullptr,
                 &keys);
    OPTIQL_CHECK(keys == Size());
  }

  static constexpr size_t LeafCapacity();
  static constexpr size_t InnerCapacity();

  // Operation statistics (relaxed counters; exact when quiescent). Restarts
  // quantify the optimistic protocols' wasted work under contention — the
  // paper's CAS-retry-storm story in numbers.
  struct Stats {
    uint64_t read_restarts;
    uint64_t write_restarts;
    uint64_t leaf_splits;
    uint64_t inner_splits;
  };

  Stats GetStats() const {
    return Stats{read_restarts_.load(std::memory_order_relaxed),
                 write_restarts_.load(std::memory_order_relaxed),
                 leaf_splits_.load(std::memory_order_relaxed),
                 inner_splits_.load(std::memory_order_relaxed)};
  }

  void ResetStats() {
    read_restarts_.store(0, std::memory_order_relaxed);
    write_restarts_.store(0, std::memory_order_relaxed);
    leaf_splits_.store(0, std::memory_order_relaxed);
    inner_splits_.store(0, std::memory_order_relaxed);
  }

 private:
  // Accumulates (attempts - 1) restarts into a stats counter on scope exit.
  class RestartCounter {
   public:
    explicit RestartCounter(std::atomic<uint64_t>& sink) : sink_(sink) {}
    ~RestartCounter() {
      if (attempts_ > 1) {
        sink_.fetch_add(attempts_ - 1, std::memory_order_relaxed);
      }
    }
    void Tick() { ++attempts_; }

   private:
    std::atomic<uint64_t>& sink_;
    uint64_t attempts_ = 0;
  };

  enum class WriteKind { kInsert, kUpdate, kUpsert, kRemove };

  struct NodeBase {
    uint16_t level;  // 0 = leaf.
    uint16_t count;  // Entries; racy reads are clamped by users.
  };

  struct Inner;

  struct Leaf : NodeBase {
    LeafLock lock;
    Leaf* next = nullptr;  // Right sibling (for scans).

    static constexpr size_t kHeader =
        sizeof(NodeBase) + sizeof(LeafLock) + sizeof(Leaf*);
    static constexpr size_t kMax =
        (kNodeBytes > kHeader + sizeof(Key) + sizeof(Value))
            ? (kNodeBytes - kHeader) / (sizeof(Key) + sizeof(Value))
            : 2;

    Key keys[kMax];
    Value values[kMax];

    Leaf() {
      this->level = 0;
      this->count = 0;
    }

    // First position with keys[pos] >= key.
    uint16_t LowerBound(const Key& key, uint16_t n) const {
      uint16_t lo = 0, hi = n;
      while (lo < hi) {
        const uint16_t mid = static_cast<uint16_t>((lo + hi) / 2);
        if (keys[mid] < key) {
          lo = static_cast<uint16_t>(mid + 1);
        } else {
          hi = mid;
        }
      }
      return lo;
    }
  };

  struct Inner : NodeBase {
    InnerLock lock;

    static constexpr size_t kHeader = sizeof(NodeBase) + sizeof(InnerLock);
    // `count` keys and `count + 1` children must fit. Floor of 3: splitting
    // an inner with fewer than 3 keys would leave the right sibling with
    // none (mid = count/2 keys stay, one moves up, count - mid - 1 move).
    static constexpr size_t kMaxRaw =
        (kNodeBytes > kHeader + sizeof(Key) + 2 * sizeof(void*))
            ? (kNodeBytes - kHeader - sizeof(void*)) /
                  (sizeof(Key) + sizeof(void*))
            : 3;
    static constexpr size_t kMax = kMaxRaw < 3 ? 3 : kMaxRaw;

    Key keys[kMax];
    NodeBase* children[kMax + 1];

    explicit Inner(uint16_t lvl) {
      this->level = lvl;
      this->count = 0;
    }

    // Child index to follow for `key`: first separator > key.
    uint16_t ChildIndex(const Key& key, uint16_t n) const {
      uint16_t lo = 0, hi = n;
      while (lo < hi) {
        const uint16_t mid = static_cast<uint16_t>((lo + hi) / 2);
        if (keys[mid] <= key) {
          lo = static_cast<uint16_t>(mid + 1);
        } else {
          hi = mid;
        }
      }
      return lo;
    }

    void InsertAt(uint16_t pos, const Key& separator, NodeBase* right) {
      for (uint16_t i = this->count; i > pos; --i) {
        keys[i] = keys[i - 1];
        children[i + 1] = children[i];
      }
      keys[pos] = separator;
      children[pos + 1] = right;
      ++this->count;
    }
  };

  static constexpr uint16_t kLeafMax = static_cast<uint16_t>(Leaf::kMax);
  static constexpr uint16_t kInnerMax = static_cast<uint16_t>(Inner::kMax);
  static_assert(Leaf::kMax >= 2 && Inner::kMax >= 3,
                "node geometry too small to split safely");

  static bool IsLeaf(const NodeBase* node) { return node->level == 0; }
  static Leaf* AsLeaf(NodeBase* node) { return static_cast<Leaf*>(node); }
  static Inner* AsInner(NodeBase* node) { return static_cast<Inner*>(node); }
  static const Leaf* AsLeaf(const NodeBase* node) {
    return static_cast<const Leaf*>(node);
  }
  static const Inner* AsInner(const NodeBase* node) {
    return static_cast<const Inner*>(node);
  }

  // Clamped count for racy reads.
  static uint16_t LoadCount(const NodeBase* node, uint16_t max) {
    const uint16_t n = node->count;
    return n > max ? max : n;
  }

  // --- Optimistic read-lock helpers (OLC and OptiQL protocols) ---
  //
  // ReadLock spins until the lock admits readers and returns the snapshot;
  // Validate re-checks it. Works for both OptLock and OptiQL since they
  // share the AcquireSh/ReleaseSh interface.

  template <class Lock>
  static uint64_t ReadLock(const Lock& lock) {
    uint64_t v;
    SpinWait wait;
    while (!lock.AcquireSh(v)) wait.Spin();
    return v;
  }

  template <class Lock>
  static bool Validate(const Lock& lock, uint64_t v) {
    return lock.ReleaseSh(v);
  }

  // --- Optimistic traversal ---

  bool LookupOptimistic(const Key& key, Value& out) const {
    RestartCounter restarts(read_restarts_);
    while (true) {
      restarts.Tick();
      NodeBase* node = root_.load(std::memory_order_acquire);
      uint64_t v;
      if (IsLeaf(node)) {
        v = ReadLock(AsLeaf(node)->lock);
      } else {
        v = ReadLock(AsInner(node)->lock);
      }
      if (node != root_.load(std::memory_order_acquire)) continue;

      bool restart = false;
      while (!IsLeaf(node)) {
        const Inner* inner = AsInner(node);
        const uint16_t n = LoadCount(inner, kInnerMax);
        NodeBase* child = inner->children[inner->ChildIndex(key, n)];
        if (!Validate(inner->lock, v)) {
          restart = true;
          break;
        }
        // `child` is now trustworthy; read its version, then re-validate
        // the parent so the two reads are mutually consistent.
        uint64_t cv;
        if (IsLeaf(child)) {
          cv = ReadLock(AsLeaf(child)->lock);
        } else {
          cv = ReadLock(AsInner(child)->lock);
        }
        if (!Validate(inner->lock, v)) {
          restart = true;
          break;
        }
        node = child;
        v = cv;
      }
      if (restart) continue;

      const Leaf* leaf = AsLeaf(node);
      const uint16_t n = LoadCount(leaf, kLeafMax);
      const uint16_t pos = leaf->LowerBound(key, n);
      bool found = false;
      Value value{};
      if (pos < n && leaf->keys[pos] == key) {
        found = true;
        value = leaf->values[pos];
      }
      if (!Validate(leaf->lock, v)) continue;
      if (found) out = value;
      return found;
    }
  }

  size_t ScanOptimistic(const Key& start, size_t limit,
                        std::vector<std::pair<Key, Value>>& out) const {
    RestartCounter restarts(read_restarts_);
    while (true) {
      restarts.Tick();
      out.clear();
      // Descend to the first candidate leaf.
      NodeBase* node = root_.load(std::memory_order_acquire);
      uint64_t v;
      if (IsLeaf(node)) {
        v = ReadLock(AsLeaf(node)->lock);
      } else {
        v = ReadLock(AsInner(node)->lock);
      }
      if (node != root_.load(std::memory_order_acquire)) continue;

      bool restart = false;
      while (!IsLeaf(node)) {
        const Inner* inner = AsInner(node);
        const uint16_t n = LoadCount(inner, kInnerMax);
        NodeBase* child = inner->children[inner->ChildIndex(start, n)];
        if (!Validate(inner->lock, v)) {
          restart = true;
          break;
        }
        uint64_t cv;
        if (IsLeaf(child)) {
          cv = ReadLock(AsLeaf(child)->lock);
        } else {
          cv = ReadLock(AsInner(child)->lock);
        }
        if (!Validate(inner->lock, v)) {
          restart = true;
          break;
        }
        node = child;
        v = cv;
      }
      if (restart) continue;

      // Walk the leaf chain, copying validated batches.
      const Leaf* leaf = AsLeaf(node);
      bool failed = false;
      while (leaf != nullptr && out.size() < limit) {
        const uint16_t n = LoadCount(leaf, kLeafMax);
        std::pair<Key, Value> batch[Leaf::kMax];
        uint16_t batch_size = 0;
        for (uint16_t i = leaf->LowerBound(start, n);
             i < n; ++i) {
          batch[batch_size++] = {leaf->keys[i], leaf->values[i]};
        }
        const Leaf* next = leaf->next;
        if (!Validate(leaf->lock, v)) {
          failed = true;
          break;
        }
        for (uint16_t i = 0; i < batch_size && out.size() < limit; ++i) {
          out.push_back(batch[i]);
        }
        if (next == nullptr || out.size() >= limit) break;
        v = ReadLock(next->lock);
        leaf = next;
      }
      if (failed) continue;
      return out.size();
    }
  }

  // --- Pessimistic (coupling) traversal ---

  using POps = internal::PessimisticOps<InnerLock>;

  bool LookupCoupling(const Key& key, Value& out) const {
    while (true) {
      NodeBase* node = root_.load(std::memory_order_acquire);
      int slot = 0;
      LockOf(node, /*shared=*/true, slot);
      if (node != root_.load(std::memory_order_acquire)) {
        UnlockOf(node, /*shared=*/true, slot);
        continue;
      }
      while (!IsLeaf(node)) {
        Inner* inner = AsInner(node);
        NodeBase* child =
            inner->children[inner->ChildIndex(key, inner->count)];
        const int child_slot = 1 - slot;
        LockOf(child, /*shared=*/true, child_slot);
        UnlockOf(node, /*shared=*/true, slot);
        node = child;
        slot = child_slot;
      }
      Leaf* leaf = AsLeaf(node);
      const uint16_t pos = leaf->LowerBound(key, leaf->count);
      const bool found = pos < leaf->count && leaf->keys[pos] == key;
      if (found) out = leaf->values[pos];
      UnlockOf(node, /*shared=*/true, slot);
      return found;
    }
  }

  size_t ScanCoupling(const Key& start, size_t limit,
                      std::vector<std::pair<Key, Value>>& out) const {
    while (true) {
      NodeBase* node = root_.load(std::memory_order_acquire);
      int slot = 0;
      LockOf(node, /*shared=*/true, slot);
      if (node != root_.load(std::memory_order_acquire)) {
        UnlockOf(node, /*shared=*/true, slot);
        continue;
      }
      while (!IsLeaf(node)) {
        Inner* inner = AsInner(node);
        NodeBase* child =
            inner->children[inner->ChildIndex(start, inner->count)];
        const int child_slot = 1 - slot;
        LockOf(child, /*shared=*/true, child_slot);
        UnlockOf(node, /*shared=*/true, slot);
        node = child;
        slot = child_slot;
      }
      Leaf* leaf = AsLeaf(node);
      while (leaf != nullptr && out.size() < limit) {
        for (uint16_t i = leaf->LowerBound(start, leaf->count);
             i < leaf->count && out.size() < limit; ++i) {
          out.push_back({leaf->keys[i], leaf->values[i]});
        }
        Leaf* next = leaf->next;
        if (next == nullptr || out.size() >= limit) break;
        const int next_slot = 1 - slot;
        POps::AcquireSh(next->lock, next_slot);
        POps::ReleaseSh(leaf->lock, slot);
        leaf = next;
        slot = next_slot;
      }
      POps::ReleaseSh(leaf->lock, slot);
      return out.size();
    }
  }

  void LockOf(NodeBase* node, bool shared, int slot) const {
    if (IsLeaf(node)) {
      if (shared) {
        POps::AcquireSh(AsLeaf(node)->lock, slot);
      } else {
        POps::AcquireEx(AsLeaf(node)->lock, slot);
      }
    } else {
      if (shared) {
        POps::AcquireSh(AsInner(node)->lock, slot);
      } else {
        POps::AcquireEx(AsInner(node)->lock, slot);
      }
    }
  }

  void UnlockOf(NodeBase* node, bool shared, int slot) const {
    if (IsLeaf(node)) {
      if (shared) {
        POps::ReleaseSh(AsLeaf(node)->lock, slot);
      } else {
        POps::ReleaseEx(AsLeaf(node)->lock, slot);
      }
    } else {
      if (shared) {
        POps::ReleaseSh(AsInner(node)->lock, slot);
      } else {
        POps::ReleaseEx(AsInner(node)->lock, slot);
      }
    }
  }

  // --- Write paths ---

  bool Write(const Key& key, const Value* value, WriteKind kind) {
    if constexpr (kProtocol == BTreeProtocol::kCoupling) {
      return WriteCoupling(key, value, kind);
    } else {
      return WriteOptimistic(key, value, kind);
    }
  }

  // Shared by OLC and OptiQL protocols: optimistic descent with eager
  // inner-node splits (OptLock-style upgrades on inner nodes), then a
  // protocol-specific leaf step.
  bool WriteOptimistic(const Key& key, const Value* value, WriteKind kind) {
    RestartCounter restarts(write_restarts_);
    while (true) {
      restarts.Tick();
      NodeBase* node = root_.load(std::memory_order_acquire);
      uint64_t v;
      if (IsLeaf(node)) {
        v = ReadLock(AsLeaf(node)->lock);
      } else {
        v = ReadLock(AsInner(node)->lock);
      }
      if (node != root_.load(std::memory_order_acquire)) continue;

      Inner* parent = nullptr;
      uint64_t pv = 0;
      bool restart = false;

      while (!IsLeaf(node)) {
        Inner* inner = AsInner(node);
        // Eager split keeps the instability scope at parent+node.
        if (NeedsSplitForWrite(kind) && inner->count == kInnerMax) {
          if (!SplitInnerEagerly(parent, pv, inner, v)) {
            restart = true;
            break;
          }
          restart = true;  // Structure changed; re-traverse.
          break;
        }
        const uint16_t n = LoadCount(inner, kInnerMax);
        NodeBase* child = inner->children[inner->ChildIndex(key, n)];
        if (!Validate(inner->lock, v)) {
          restart = true;
          break;
        }
        uint64_t cv;
        if (IsLeaf(child)) {
          cv = ReadLock(AsLeaf(child)->lock);
        } else {
          cv = ReadLock(AsInner(child)->lock);
        }
        if (!Validate(inner->lock, v)) {
          restart = true;
          break;
        }
        parent = inner;
        pv = v;
        node = child;
        v = cv;
      }
      if (restart) continue;

      bool result = false;
      LeafWriteStatus status;
      if constexpr (kProtocol == BTreeProtocol::kOptiQl) {
        status = LeafWriteOptiQl(AsLeaf(node), parent, pv, key, value, kind,
                                 &result);
      } else {
        status = LeafWriteOlc(AsLeaf(node), v, parent, pv, key, value, kind,
                              &result);
      }
      if (status == LeafWriteStatus::kRestart) continue;
      return result;
    }
  }

  enum class LeafWriteStatus { kDone, kRestart };

  static constexpr bool NeedsSplitForWrite(WriteKind kind) {
    return kind == WriteKind::kInsert || kind == WriteKind::kUpsert;
  }

  // Splits a full inner node while descending (OLC): upgrade parent (or
  // verify we own the root), upgrade the node, split, then restart.
  // Returns false if any lock step failed (caller restarts either way).
  bool SplitInnerEagerly(Inner* parent, uint64_t pv, Inner* inner,
                         uint64_t v) {
    if (parent != nullptr) {
      if (!parent->lock.TryUpgrade(pv)) return false;
    }
    if (!inner->lock.TryUpgrade(v)) {
      if (parent != nullptr) parent->lock.ReleaseEx();
      return false;
    }
    if (parent == nullptr &&
        root_.load(std::memory_order_acquire) != inner) {
      inner->lock.ReleaseEx();
      return false;
    }
    if (parent != nullptr && parent->count == kInnerMax) {
      // Parent filled up since we passed it; retry from the top (it will be
      // split eagerly on the next descent).
      parent->lock.ReleaseEx();
      inner->lock.ReleaseEx();
      return false;
    }

    inner_splits_.fetch_add(1, std::memory_order_relaxed);
    // Move the upper half to a new right sibling; middle key moves up.
    const uint16_t mid = inner->count / 2;
    const Key separator = inner->keys[mid];
    Inner* right = new Inner(inner->level);
    right->count = static_cast<uint16_t>(inner->count - mid - 1);
    for (uint16_t i = 0; i < right->count; ++i) {
      right->keys[i] = inner->keys[mid + 1 + i];
    }
    for (uint16_t i = 0; i <= right->count; ++i) {
      right->children[i] = inner->children[mid + 1 + i];
    }
    inner->count = mid;

    PublishSplit(parent, inner, right, separator);
    if (parent != nullptr) parent->lock.ReleaseEx();
    inner->lock.ReleaseEx();
    return true;
  }

  // Inserts (separator, right) into `parent`, or grows a new root when
  // `parent` is null. Caller holds `left` (and `parent` if present)
  // exclusively and has verified root identity when parent is null.
  void PublishSplit(Inner* parent, NodeBase* left, NodeBase* right,
                    const Key& separator) {
    if (parent != nullptr) {
      parent->InsertAt(parent->ChildIndex(separator, parent->count),
                       separator, right);
      return;
    }
    Inner* new_root = new Inner(static_cast<uint16_t>(left->level + 1));
    new_root->count = 1;
    new_root->keys[0] = separator;
    new_root->children[0] = left;
    new_root->children[1] = right;
    root_.store(new_root, std::memory_order_release);
  }

  // OLC leaf step: upgrade from the observed version (CAS); on any failure
  // the operation restarts from the root (paper §6.1's description of the
  // original protocol).
  LeafWriteStatus LeafWriteOlc(Leaf* leaf, uint64_t v, Inner* parent,
                               uint64_t pv, const Key& key,
                               const Value* value, WriteKind kind,
                               bool* result) {
    if (NeedsSplitForWrite(kind) && leaf->count == kLeafMax) {
      if (parent != nullptr) {
        if (!parent->lock.TryUpgrade(pv)) return LeafWriteStatus::kRestart;
      }
      if (!leaf->lock.TryUpgrade(v)) {
        if (parent != nullptr) parent->lock.ReleaseEx();
        return LeafWriteStatus::kRestart;
      }
      if (parent == nullptr &&
          root_.load(std::memory_order_acquire) != leaf) {
        leaf->lock.ReleaseEx();
        return LeafWriteStatus::kRestart;
      }
      if (parent != nullptr && parent->count == kInnerMax) {
        parent->lock.ReleaseEx();
        leaf->lock.ReleaseEx();
        return LeafWriteStatus::kRestart;
      }
      *result = SplitLeafAndApply(leaf, parent, key, value, kind);
      if (parent != nullptr) parent->lock.ReleaseEx();
      leaf->lock.ReleaseEx();
      return LeafWriteStatus::kDone;
    }

    if (!leaf->lock.TryUpgrade(v)) return LeafWriteStatus::kRestart;
    *result = ApplyToLeaf(leaf, key, value, kind);
    leaf->lock.ReleaseEx();
    return LeafWriteStatus::kDone;
  }

  // OptiQL leaf step (paper Algorithm 4): lock the leaf *directly* with the
  // queue-based lock, then validate the parent; no upgrade, no re-search
  // after waiting in the queue.
  LeafWriteStatus LeafWriteOptiQl(Leaf* leaf, Inner* parent, uint64_t pv,
                                  const Key& key, const Value* value,
                                  WriteKind kind, bool* result) {
    QNode* qnode = ThreadQNodes::Get(0);
    if constexpr (kAor) {
      leaf->lock.AcquireExDeferred(qnode);
    } else {
      leaf->lock.AcquireEx(qnode);
    }
    auto abort = [&] {
      if constexpr (kAor) leaf->lock.FinishAcquireEx(qnode);
      leaf->lock.ReleaseEx(qnode);
      return LeafWriteStatus::kRestart;
    };
    // The leaf may have been split/emptied while we waited in the queue;
    // the parent's version tells us (step 3 of the adapted protocol).
    if (parent != nullptr) {
      if (!Validate(parent->lock, pv)) return abort();
    } else if (root_.load(std::memory_order_acquire) != leaf) {
      return abort();
    }

    if (NeedsSplitForWrite(kind) && leaf->count == kLeafMax) {
      if constexpr (kAor) leaf->lock.FinishAcquireEx(qnode);
      if (parent != nullptr) {
        if (!parent->lock.TryUpgrade(pv)) {
          leaf->lock.ReleaseEx(qnode);
          return LeafWriteStatus::kRestart;
        }
        if (parent->count == kInnerMax) {
          parent->lock.ReleaseEx();
          leaf->lock.ReleaseEx(qnode);
          return LeafWriteStatus::kRestart;
        }
      }
      *result = SplitLeafAndApply(leaf, parent, key, value, kind);
      if (parent != nullptr) parent->lock.ReleaseEx();
      leaf->lock.ReleaseEx(qnode);
      return LeafWriteStatus::kDone;
    }

    if constexpr (kAor) {
      // AOR: opportunistic readers stay admitted through the (read-only)
      // in-leaf search; close the window only before modifying.
      const uint16_t n = leaf->count;
      const uint16_t pos = leaf->LowerBound(key, n);
      leaf->lock.FinishAcquireEx(qnode);
      *result = ApplyToLeafAt(leaf, pos, key, value, kind);
    } else {
      *result = ApplyToLeaf(leaf, key, value, kind);
    }
    leaf->lock.ReleaseEx(qnode);
    return LeafWriteStatus::kDone;
  }

  // Splits an exclusively-locked full leaf (parent exclusively locked or
  // root ownership verified), then applies the pending write to the correct
  // half. Returns the operation result.
  bool SplitLeafAndApply(Leaf* leaf, Inner* parent, const Key& key,
                         const Value* value, WriteKind kind) {
    leaf_splits_.fetch_add(1, std::memory_order_relaxed);
    const uint16_t mid = leaf->count / 2;
    Leaf* right = new Leaf();
    right->count = static_cast<uint16_t>(leaf->count - mid);
    for (uint16_t i = 0; i < right->count; ++i) {
      right->keys[i] = leaf->keys[mid + i];
      right->values[i] = leaf->values[mid + i];
    }
    leaf->count = mid;
    right->next = leaf->next;
    leaf->next = right;
    const Key separator = right->keys[0];
    PublishSplit(parent, leaf, right, separator);
    Leaf* target = key < separator ? leaf : right;
    return ApplyToLeaf(target, key, value, kind);
  }

  bool ApplyToLeaf(Leaf* leaf, const Key& key, const Value* value,
                   WriteKind kind) {
    const uint16_t pos = leaf->LowerBound(key, leaf->count);
    return ApplyToLeafAt(leaf, pos, key, value, kind);
  }

  bool ApplyToLeafAt(Leaf* leaf, uint16_t pos, const Key& key,
                     const Value* value, WriteKind kind) {
    const bool exists =
        pos < leaf->count && leaf->keys[pos] == key;
    switch (kind) {
      case WriteKind::kInsert:
        if (exists) return false;
        InsertIntoLeaf(leaf, pos, key, *value);
        return true;
      case WriteKind::kUpdate:
        if (!exists) return false;
        leaf->values[pos] = *value;
        return true;
      case WriteKind::kUpsert:
        if (exists) {
          leaf->values[pos] = *value;
        } else {
          InsertIntoLeaf(leaf, pos, key, *value);
        }
        return true;
      case WriteKind::kRemove:
        if (!exists) return false;
        for (uint16_t i = pos; i + 1 < leaf->count; ++i) {
          leaf->keys[i] = leaf->keys[i + 1];
          leaf->values[i] = leaf->values[i + 1];
        }
        --leaf->count;
        size_.fetch_sub(1, std::memory_order_acq_rel);
        return true;
    }
    return false;
  }

  void InsertIntoLeaf(Leaf* leaf, uint16_t pos, const Key& key,
                      const Value& value) {
    OPTIQL_CHECK(leaf->count < kLeafMax);
    for (uint16_t i = leaf->count; i > pos; --i) {
      leaf->keys[i] = leaf->keys[i - 1];
      leaf->values[i] = leaf->values[i - 1];
    }
    leaf->keys[pos] = key;
    leaf->values[pos] = value;
    ++leaf->count;
    size_.fetch_add(1, std::memory_order_acq_rel);
  }

  // --- Pessimistic write path: exclusive top-down coupling with eager
  // splits (at most two exclusive locks held). ---

  bool WriteCoupling(const Key& key, const Value* value, WriteKind kind) {
    while (true) {
      NodeBase* node = root_.load(std::memory_order_acquire);
      int slot = 0;
      LockOf(node, /*shared=*/false, slot);
      if (node != root_.load(std::memory_order_acquire)) {
        UnlockOf(node, /*shared=*/false, slot);
        continue;
      }

      // Split a full root first so descending splits always have a parent.
      // The key may now belong to the new right sibling, which is only
      // reachable through the new root, so re-traverse.
      if (NeedsSplitForWrite(kind) && IsFull(node)) {
        SplitChildOfNothing(node);
        UnlockOf(node, /*shared=*/false, slot);
        continue;
      }

      while (!IsLeaf(node)) {
        Inner* inner = AsInner(node);
        uint16_t idx = inner->ChildIndex(key, inner->count);
        NodeBase* child = inner->children[idx];
        const int child_slot = 1 - slot;
        LockOf(child, /*shared=*/false, child_slot);
        if (NeedsSplitForWrite(kind) && IsFull(child)) {
          NodeBase* right = SplitChild(inner, child);
          // Re-route: the key may belong to the new right node.
          idx = inner->ChildIndex(key, inner->count);
          NodeBase* target = inner->children[idx];
          if (target != child) {
            UnlockOf(child, /*shared=*/false, child_slot);
            LockOf(target, /*shared=*/false, child_slot);
            child = target;
          }
          (void)right;
        }
        UnlockOf(node, /*shared=*/false, slot);
        node = child;
        slot = child_slot;
      }

      Leaf* leaf = AsLeaf(node);
      const bool result = ApplyToLeaf(leaf, key, value, kind);
      UnlockOf(node, /*shared=*/false, slot);
      return result;
    }
  }

  bool IsFull(const NodeBase* node) const {
    return IsLeaf(node) ? node->count == kLeafMax : node->count == kInnerMax;
  }

  // Splits the (exclusively locked) root into a new root. The old root
  // remains locked; the new root is published immediately (safe: concurrent
  // operations re-check root identity after locking).
  void SplitChildOfNothing(NodeBase* old_root) {
    NodeBase* right;
    Key separator;
    SplitNode(old_root, &right, &separator);
    PublishSplit(nullptr, old_root, right, separator);
  }

  // Splits `child` (both `parent` and `child` exclusively locked).
  NodeBase* SplitChild(Inner* parent, NodeBase* child) {
    NodeBase* right;
    Key separator;
    SplitNode(child, &right, &separator);
    PublishSplit(parent, child, right, separator);
    return right;
  }

  void SplitNode(NodeBase* node, NodeBase** right_out, Key* separator) {
    if (IsLeaf(node)) {
      leaf_splits_.fetch_add(1, std::memory_order_relaxed);
      Leaf* leaf = AsLeaf(node);
      const uint16_t mid = leaf->count / 2;
      Leaf* right = new Leaf();
      right->count = static_cast<uint16_t>(leaf->count - mid);
      for (uint16_t i = 0; i < right->count; ++i) {
        right->keys[i] = leaf->keys[mid + i];
        right->values[i] = leaf->values[mid + i];
      }
      leaf->count = mid;
      right->next = leaf->next;
      leaf->next = right;
      *separator = right->keys[0];
      *right_out = right;
    } else {
      inner_splits_.fetch_add(1, std::memory_order_relaxed);
      Inner* inner = AsInner(node);
      const uint16_t mid = inner->count / 2;
      Inner* right = new Inner(inner->level);
      right->count = static_cast<uint16_t>(inner->count - mid - 1);
      for (uint16_t i = 0; i < right->count; ++i) {
        right->keys[i] = inner->keys[mid + 1 + i];
      }
      for (uint16_t i = 0; i <= right->count; ++i) {
        right->children[i] = inner->children[mid + 1 + i];
      }
      *separator = inner->keys[mid];
      inner->count = mid;
      *right_out = right;
    }
  }

  // --- Maintenance ---

  void FreeSubtree(NodeBase* node) {
    if (node == nullptr) return;
    if (IsLeaf(node)) {
      delete AsLeaf(node);
      return;
    }
    Inner* inner = AsInner(node);
    for (uint16_t i = 0; i <= inner->count; ++i) {
      FreeSubtree(inner->children[i]);
    }
    delete inner;
  }

  void CheckSubtree(const NodeBase* node, const Key* lower, const Key* upper,
                    size_t* keys) const {
    if (IsLeaf(node)) {
      const Leaf* leaf = AsLeaf(node);
      OPTIQL_CHECK(leaf->count <= kLeafMax);
      for (uint16_t i = 0; i < leaf->count; ++i) {
        if (i > 0) OPTIQL_CHECK(leaf->keys[i - 1] < leaf->keys[i]);
        if (lower != nullptr) OPTIQL_CHECK(!(leaf->keys[i] < *lower));
        if (upper != nullptr) OPTIQL_CHECK(leaf->keys[i] < *upper);
      }
      *keys += leaf->count;
      return;
    }
    const Inner* inner = AsInner(node);
    OPTIQL_CHECK(inner->count >= 1);
    OPTIQL_CHECK(inner->count <= kInnerMax);
    for (uint16_t i = 0; i < inner->count; ++i) {
      if (i > 0) OPTIQL_CHECK(inner->keys[i - 1] < inner->keys[i]);
    }
    for (uint16_t i = 0; i <= inner->count; ++i) {
      const NodeBase* child = inner->children[i];
      OPTIQL_CHECK(child->level + 1 == inner->level);
      const Key* lo = i == 0 ? lower : &inner->keys[i - 1];
      const Key* hi = i == inner->count ? upper : &inner->keys[i];
      CheckSubtree(child, lo, hi, keys);
    }
  }

  std::atomic<NodeBase*> root_;
  std::atomic<size_t> size_{0};
  mutable std::atomic<uint64_t> read_restarts_{0};
  std::atomic<uint64_t> write_restarts_{0};
  std::atomic<uint64_t> leaf_splits_{0};
  std::atomic<uint64_t> inner_splits_{0};
};

template <class Key, class Value, class SyncPolicy, size_t kNodeBytes>
constexpr size_t BTree<Key, Value, SyncPolicy, kNodeBytes>::LeafCapacity() {
  return Leaf::kMax;
}

template <class Key, class Value, class SyncPolicy, size_t kNodeBytes>
constexpr size_t BTree<Key, Value, SyncPolicy, kNodeBytes>::InnerCapacity() {
  return Inner::kMax;
}

}  // namespace optiql

#endif  // OPTIQL_INDEX_BTREE_H_
