// Node machinery shared by both ART implementations (optimistic `ArtTree`
// in art.h, pessimistic `ArtCouplingTree` in art_coupling.h): adaptive node
// types Node4/16/48/256, tagged leaf pointers to (key, value) records,
// capped path-compression prefixes, and the per-type child operations.
//
// Everything is templated on the per-node lock type so each tree variant
// embeds the lock it needs without paying for the others.
#ifndef OPTIQL_INDEX_ART_NODES_H_
#define OPTIQL_INDEX_ART_NODES_H_

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string_view>

#include "common/check.h"
#include "common/platform.h"
#include "common/prefetch.h"
#include "common/simd.h"
#include "sync/epoch.h"

namespace optiql {

// Maximum number of path-compression bytes stored per node. Longer common
// prefixes become chains of Node4s (see art.h header comment).
inline constexpr size_t kArtMaxPrefix = 12;

template <class Lock>
struct ArtNodes {
  enum class NodeType : uint8_t { kNode4, kNode16, kNode48, kNode256 };

  struct LeafRecord {
    std::atomic<uint64_t> value;
    uint32_t key_len;
    uint8_t key[];  // key_len bytes.
  };

  struct Node {
    Lock lock;
    std::atomic<uint32_t> contention{0};
    uint16_t count = 0;
    NodeType type;
    uint8_t prefix_len = 0;
    uint8_t prefix[kArtMaxPrefix];
    std::atomic<bool> obsolete{false};
  };

  // Concrete node types are cacheline-aligned: the header + lock land in
  // line 0 (one descent prefetch covers both) and the key/child arrays
  // start at predictable lines. The key arrays are always materialized at
  // full fixed size, which is what lets FindChild probe them with full
  // 16-byte / 4-byte vector loads regardless of the (possibly torn) count.
  struct alignas(kCachelineSize) Node4 : Node {
    uint8_t keys[4];
    void* children[4];
  };
  struct alignas(kCachelineSize) Node16 : Node {
    uint8_t keys[16];
    void* children[16];
  };
  struct alignas(kCachelineSize) Node48 : Node {
    static constexpr uint8_t kEmpty = 0xFF;
    uint8_t child_index[256];
    void* children[48];
  };
  struct alignas(kCachelineSize) Node256 : Node {
    void* children[256];
  };

  static_assert(alignof(Node4) == kCachelineSize &&
                    alignof(Node16) == kCachelineSize &&
                    alignof(Node48) == kCachelineSize &&
                    alignof(Node256) == kCachelineSize,
                "ART nodes must be cacheline-aligned");
  static_assert(sizeof(Node16::keys) == 16 && sizeof(Node4::keys) == 4,
                "key arrays must be full-size (vector probes load them "
                "whole and mask by count)");

  // --- Tagged pointers ---

  // Bit 0 of a child slot marks a (key, value) leaf record.
  static constexpr uintptr_t kLeafTagMask = 1;

  static bool IsLeaf(void* ptr) {
    return (reinterpret_cast<uintptr_t>(ptr) & kLeafTagMask) != 0;
  }
  static LeafRecord* AsLeaf(void* ptr) {
    return reinterpret_cast<LeafRecord*>(reinterpret_cast<uintptr_t>(ptr) &
                                         ~kLeafTagMask);
  }
  static void* TagLeaf(LeafRecord* leaf) {
    return reinterpret_cast<void*>(reinterpret_cast<uintptr_t>(leaf) |
                                   kLeafTagMask);
  }
  static Node* AsNode(void* ptr) { return static_cast<Node*>(ptr); }

  static LeafRecord* NewLeaf(std::string_view key, uint64_t value) {
    void* mem = std::malloc(sizeof(LeafRecord) + key.size());
    OPTIQL_CHECK(mem != nullptr);
    auto* leaf = new (mem) LeafRecord;
    leaf->value.store(value, std::memory_order_relaxed);
    leaf->key_len = static_cast<uint32_t>(key.size());
    std::memcpy(leaf->key, key.data(), key.size());
    return leaf;
  }

  static void FreeLeaf(LeafRecord* leaf) { std::free(leaf); }

  static Node* NewNode(NodeType type) {
    Node* node = nullptr;
    switch (type) {
      case NodeType::kNode4:
        node = new Node4();
        break;
      case NodeType::kNode16:
        node = new Node16();
        break;
      case NodeType::kNode48: {
        auto* n48 = new Node48();
        std::memset(n48->child_index, Node48::kEmpty,
                    sizeof(n48->child_index));
        std::memset(n48->children, 0, sizeof(n48->children));
        node = n48;
        break;
      }
      case NodeType::kNode256: {
        auto* n256 = new Node256();
        std::memset(n256->children, 0, sizeof(n256->children));
        node = n256;
        break;
      }
    }
    node->type = type;
    return node;
  }

  static void DeleteNode(Node* node) {
    switch (node->type) {
      case NodeType::kNode4:
        delete static_cast<Node4*>(node);
        break;
      case NodeType::kNode16:
        delete static_cast<Node16*>(node);
        break;
      case NodeType::kNode48:
        delete static_cast<Node48*>(node);
        break;
      case NodeType::kNode256:
        delete static_cast<Node256*>(node);
        break;
    }
  }

  static void RetireNode(Node* node) {
    EpochManager::Instance().Retire(node, [](void* p) {
      DeleteNode(static_cast<Node*>(p));
    });
  }

  static void RetireLeaf(LeafRecord* leaf) {
    EpochManager::Instance().Retire(leaf, [](void* p) { std::free(p); });
  }

  // --- Per-type child operations (caller holds the node's write lock, or
  // tolerates racy results and validates afterwards). ---
  //
  // GCC's -Warray-bounds cannot correlate the `type` tag with the
  // allocation site after inlining NewNode, so it flags the (dynamically
  // unreachable) larger-type branches as out-of-bounds. Suppress locally.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Warray-bounds"

  static void* FindChild(const Node* node, uint8_t byte) {
    switch (node->type) {
      case NodeType::kNode4: {
        // SWAR probe of the full 4-byte key word; the (possibly torn)
        // count only masks lanes, so racy reads stay in bounds.
        const auto* n = static_cast<const Node4*>(node);
        const int idx = simd::FindByte4(n->keys, n->count, byte);
        return idx >= 0 ? n->children[idx] : nullptr;
      }
      case NodeType::kNode16: {
        // The original ART design point: one 16-byte compare + movemask
        // instead of a scalar scan.
        const auto* n = static_cast<const Node16*>(node);
        const int idx = simd::FindByte16(n->keys, n->count, byte);
        return idx >= 0 ? n->children[idx] : nullptr;
      }
      case NodeType::kNode48: {
        const auto* n = static_cast<const Node48*>(node);
        const uint8_t slot = n->child_index[byte];
        return slot == Node48::kEmpty ? nullptr
                                      : n->children[slot < 48 ? slot : 0];
      }
      case NodeType::kNode256: {
        return static_cast<const Node256*>(node)->children[byte];
      }
    }
    return nullptr;
  }

  // Warms the header line of a child slot returned by FindChild. The
  // pointer may be tagged (leaf record) or torn (optimistic read before
  // validation); prefetch never faults, so both are safe. Callers issue
  // this before validating the parent so the child's cache miss overlaps
  // the validation.
  static void PrefetchChild(const void* tagged_child) {
    PrefetchTagged(tagged_child, kLeafTagMask);
  }

  static bool IsNodeFull(const Node* node) {
    switch (node->type) {
      case NodeType::kNode4:
        return node->count >= 4;
      case NodeType::kNode16:
        return node->count >= 16;
      case NodeType::kNode48:
        return node->count >= 48;
      case NodeType::kNode256:
        return false;
    }
    return false;
  }

  // Adds a child; node must not be full. Publication order (child, key,
  // count) keeps racy readers memory-safe; correctness comes from
  // validation.
  static void AddChild(Node* node, uint8_t byte, void* child) {
    switch (node->type) {
      case NodeType::kNode4: {
        auto* n = static_cast<Node4*>(node);
        n->children[n->count] = child;
        n->keys[n->count] = byte;
        ++n->count;
        break;
      }
      case NodeType::kNode16: {
        auto* n = static_cast<Node16*>(node);
        n->children[n->count] = child;
        n->keys[n->count] = byte;
        ++n->count;
        break;
      }
      case NodeType::kNode48: {
        auto* n = static_cast<Node48*>(node);
        uint8_t slot = 0;
        while (n->children[slot] != nullptr) ++slot;
        n->children[slot] = child;
        n->child_index[byte] = slot;
        ++n->count;
        break;
      }
      case NodeType::kNode256: {
        auto* n = static_cast<Node256*>(node);
        n->children[byte] = child;
        ++n->count;
        break;
      }
    }
  }

  // Replaces the child routed by `byte` (must exist).
  static void ReplaceChild(Node* node, uint8_t byte, void* child) {
    switch (node->type) {
      case NodeType::kNode4: {
        auto* n = static_cast<Node4*>(node);
        for (uint16_t i = 0; i < n->count; ++i) {
          if (n->keys[i] == byte) {
            n->children[i] = child;
            return;
          }
        }
        break;
      }
      case NodeType::kNode16: {
        auto* n = static_cast<Node16*>(node);
        for (uint16_t i = 0; i < n->count; ++i) {
          if (n->keys[i] == byte) {
            n->children[i] = child;
            return;
          }
        }
        break;
      }
      case NodeType::kNode48: {
        auto* n = static_cast<Node48*>(node);
        n->children[n->child_index[byte]] = child;
        return;
      }
      case NodeType::kNode256: {
        static_cast<Node256*>(node)->children[byte] = child;
        return;
      }
    }
    OPTIQL_CHECK(false);  // Child must exist.
  }

  static void RemoveChild(Node* node, uint8_t byte) {
    switch (node->type) {
      case NodeType::kNode4: {
        auto* n = static_cast<Node4*>(node);
        for (uint16_t i = 0; i < n->count; ++i) {
          if (n->keys[i] == byte) {
            for (uint16_t j = i; j + 1 < n->count; ++j) {
              n->keys[j] = n->keys[j + 1];
              n->children[j] = n->children[j + 1];
            }
            --n->count;
            return;
          }
        }
        break;
      }
      case NodeType::kNode16: {
        auto* n = static_cast<Node16*>(node);
        for (uint16_t i = 0; i < n->count; ++i) {
          if (n->keys[i] == byte) {
            for (uint16_t j = i; j + 1 < n->count; ++j) {
              n->keys[j] = n->keys[j + 1];
              n->children[j] = n->children[j + 1];
            }
            --n->count;
            return;
          }
        }
        break;
      }
      case NodeType::kNode48: {
        auto* n = static_cast<Node48*>(node);
        const uint8_t slot = n->child_index[byte];
        if (slot != Node48::kEmpty) {
          n->children[slot] = nullptr;
          n->child_index[byte] = Node48::kEmpty;
          --n->count;
          return;
        }
        break;
      }
      case NodeType::kNode256: {
        auto* n = static_cast<Node256*>(node);
        if (n->children[byte] != nullptr) {
          n->children[byte] = nullptr;
          --n->count;
          return;
        }
        break;
      }
    }
    OPTIQL_CHECK(false);  // Child must exist.
  }

  // Copies all children of `node` into a fresh node of the given type
  // (same prefix). The target type must have room for node->count children.
  static Node* CopyToType(const Node* node, NodeType type) {
    Node* fresh = NewNode(type);
    fresh->prefix_len = node->prefix_len;
    std::memcpy(fresh->prefix, node->prefix, node->prefix_len);
    ForEachChild(node, [&](uint8_t byte, void* child) {
      AddChild(fresh, byte, child);
    });
    return fresh;
  }

  // Copies all children of `node` into a fresh, larger node (same prefix).
  static Node* GrowNode(Node* node) {
    NodeType bigger = NodeType::kNode256;
    switch (node->type) {
      case NodeType::kNode4:
        bigger = NodeType::kNode16;
        break;
      case NodeType::kNode16:
        bigger = NodeType::kNode48;
        break;
      case NodeType::kNode48:
        bigger = NodeType::kNode256;
        break;
      case NodeType::kNode256:
        OPTIQL_CHECK(false);  // Node256 never grows.
    }
    return CopyToType(node, bigger);
  }

  // The next smaller node type a node with `count` children (after a
  // pending removal) can shrink into, or nullopt-style: the same type when
  // no shrink applies. Thresholds sit below the smaller type's capacity so
  // an insert right after a shrink does not immediately grow again.
  static NodeType ShrinkTarget(NodeType type, uint16_t count) {
    switch (type) {
      case NodeType::kNode16:
        return count <= 3 ? NodeType::kNode4 : type;
      case NodeType::kNode48:
        return count <= 12 ? NodeType::kNode16 : type;
      case NodeType::kNode256:
        return count <= 40 ? NodeType::kNode48 : type;
      case NodeType::kNode4:
        return type;
    }
    return type;
  }

  template <class F>
  static void ForEachChild(const Node* node, F&& f) {
    switch (node->type) {
      case NodeType::kNode4: {
        const auto* n = static_cast<const Node4*>(node);
        for (uint16_t i = 0; i < n->count; ++i) f(n->keys[i], n->children[i]);
        break;
      }
      case NodeType::kNode16: {
        const auto* n = static_cast<const Node16*>(node);
        for (uint16_t i = 0; i < n->count; ++i) f(n->keys[i], n->children[i]);
        break;
      }
      case NodeType::kNode48: {
        const auto* n = static_cast<const Node48*>(node);
        for (int byte = 0; byte < 256; ++byte) {
          const uint8_t slot = n->child_index[byte];
          if (slot != Node48::kEmpty) {
            f(static_cast<uint8_t>(byte), n->children[slot]);
          }
        }
        break;
      }
      case NodeType::kNode256: {
        const auto* n = static_cast<const Node256*>(node);
        for (int byte = 0; byte < 256; ++byte) {
          if (n->children[byte] != nullptr) {
            f(static_cast<uint8_t>(byte), n->children[byte]);
          }
        }
        break;
      }
    }
  }

#pragma GCC diagnostic pop

  // --- Prefix handling ---

  // Compares `key` at `level` against the node's stored prefix. Returns the
  // number of matching bytes (== prefix_len on full match).
  static uint32_t MatchPrefix(const Node* node, std::string_view key,
                              size_t level) {
    const uint32_t prefix_len =
        node->prefix_len <= kArtMaxPrefix ? node->prefix_len : kArtMaxPrefix;
    uint32_t i = 0;
    for (; i < prefix_len; ++i) {
      if (level + i >= key.size() ||
          static_cast<uint8_t>(key[level + i]) != node->prefix[i]) {
        break;
      }
    }
    return i;
  }

  static bool LeafMatches(const LeafRecord* leaf, std::string_view key) {
    return leaf->key_len == key.size() &&
           std::memcmp(leaf->key, key.data(), key.size()) == 0;
  }

  // Wraps `below` in chained Node4s so the returned subtree consumes key
  // positions [start, route_pos]: the bottom link routes key[route_pos] to
  // `below`; compressed prefixes (capped at kArtMaxPrefix per link) cover
  // the rest. Requires start <= route_pos.
  static void* ChainAbove(std::string_view key, size_t start,
                          size_t route_pos, void* below) {
    while (true) {
      const size_t prefix_len = std::min(kArtMaxPrefix, route_pos - start);
      const size_t prefix_begin = route_pos - prefix_len;
      Node* link = NewNode(NodeType::kNode4);
      link->prefix_len = static_cast<uint8_t>(prefix_len);
      std::memcpy(link->prefix, key.data() + prefix_begin, prefix_len);
      AddChild(link, static_cast<uint8_t>(key[route_pos]), below);
      below = link;
      if (prefix_begin == start) return below;
      route_pos = prefix_begin - 1;  // The byte that routes into `link`.
    }
  }

  // Builds the (possibly chained) path for the key suffix *after* the
  // routing byte key[level]; the final byte routes to the leaf inside the
  // bottom node. Returns the subtree to store in the caller's key[level]
  // slot (the tagged leaf itself when key[level] is the final byte — lazy
  // expansion).
  static void* BuildPathToLeaf(std::string_view key, size_t level,
                               LeafRecord* leaf) {
    OPTIQL_CHECK(level < key.size());
    if (level + 1 == key.size()) return TagLeaf(leaf);
    return ChainAbove(key, level + 1, key.size() - 1, TagLeaf(leaf));
  }

  // Builds the subtree for two diverging keys. `suffix_begin` is the first
  // uncovered byte (just after the routing byte into the replaced slot);
  // `divergence` is the first byte where the keys differ.
  static void* BuildDivergingPath(LeafRecord* existing, std::string_view key,
                                  uint64_t value, size_t suffix_begin,
                                  size_t divergence) {
    // Fork node: routes existing vs new key by their divergent byte, with
    // the *last* (up to kArtMaxPrefix) common bytes as its prefix; any
    // common bytes above that are covered by chained Node4s.
    Node* fork = NewNode(NodeType::kNode4);
    const size_t common = divergence - suffix_begin;
    const size_t fork_prefix = std::min(common, kArtMaxPrefix);
    const size_t fork_prefix_begin = divergence - fork_prefix;
    fork->prefix_len = static_cast<uint8_t>(fork_prefix);
    std::memcpy(fork->prefix, key.data() + fork_prefix_begin, fork_prefix);

    LeafRecord* fresh = NewLeaf(key, value);
    // Lazy expansion: each leaf keeps its remaining bytes to itself.
    AddChild(fork, existing->key[divergence], TagLeaf(existing));
    AddChild(fork, static_cast<uint8_t>(key[divergence]), TagLeaf(fresh));

    if (fork_prefix_begin == suffix_begin) return fork;
    return ChainAbove(key, suffix_begin, fork_prefix_begin - 1, fork);
  }

  // --- Whole-subtree maintenance (single-threaded) ---

  static void FreeSubtree(Node* node) {
    ForEachChild(node, [&](uint8_t, void* child) {
      if (IsLeaf(child)) {
        FreeLeaf(AsLeaf(child));
      } else {
        FreeSubtree(AsNode(child));
      }
    });
    DeleteNode(node);
  }

  static void CheckSubtree(const Node* node, uint8_t* key_buffer,
                           size_t level, size_t* leaves) {
    OPTIQL_CHECK(level + node->prefix_len < 500);
    std::memcpy(key_buffer + level, node->prefix, node->prefix_len);
    const size_t base = level + node->prefix_len;
    ForEachChild(node, [&](uint8_t byte, void* child) {
      key_buffer[base] = byte;
      if (IsLeaf(child)) {
        const LeafRecord* leaf = AsLeaf(child);
        OPTIQL_CHECK(leaf->key_len >= base + 1);
        OPTIQL_CHECK(std::memcmp(leaf->key, key_buffer, base + 1) == 0);
        ++*leaves;
      } else {
        CheckSubtree(AsNode(child), key_buffer, base + 1, leaves);
      }
    });
  }
};

}  // namespace optiql

#endif  // OPTIQL_INDEX_ART_NODES_H_
