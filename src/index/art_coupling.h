// ART with traditional pessimistic lock coupling — the reader-writer-lock
// baselines for the trie experiments (paper §7.1, Figure 9 bottom):
// every node carries an MCS-RW or pthread (std::shared_mutex) lock.
//
//   * Readers couple shared locks top-down: lock child, release parent.
//   * Writers couple exclusive locks top-down, holding at most the
//     (parent, node) pair: all structural changes (prefix split, node
//     growth, leaf fork) modify either `node` itself or `node`'s slot in
//     `parent`, both of which are held.
//
// Because every access path to a node goes through its (locked) parent and
// node replacement happens with both held exclusively, replaced nodes can
// be freed immediately — no epochs needed, unlike the optimistic ArtTree.
//
// Lock ordering is strictly top-down on a tree, so the protocol is
// deadlock-free. The fixed Node256 root never has a prefix and never grows,
// which removes every root special case.
//
// LINT-ALLOW-FILE(epoch-guard): no optimistic readers exist here — every
// access holds a lock — so operations run without EpochGuard by design.
// LINT-ALLOW-FILE(raw-delete): replaced nodes are unlinked while (parent,
// node) are both held exclusively, so no other thread can hold a path to
// them and immediate frees are safe; the epoch layer is not involved.
#ifndef OPTIQL_INDEX_ART_COUPLING_H_
#define OPTIQL_INDEX_ART_COUPLING_H_

#include <atomic>
#include <cstdint>
#include <string_view>

#include "common/annotations.h"
#include "common/check.h"
#include "index/art_nodes.h"
#include "locks/mcs_rw_lock.h"
#include "sync/txn_ops.h"
#include "workload/key_generator.h"

namespace optiql {

template <class RwLock = McsRwLock>
class ArtCouplingTree {
 public:
  using Lock = RwLock;

  ArtCouplingTree() : root_(Nodes::NewNode(NodeType::kNode256)) {}

  ~ArtCouplingTree() { Nodes::FreeSubtree(root_); }

  ArtCouplingTree(const ArtCouplingTree&) = delete;
  ArtCouplingTree& operator=(const ArtCouplingTree&) = delete;

  // --- Byte-string key interface (same contract as ArtTree) ---
  //
  // Every operation below uses hand-over-hand coupling: the held-lock set
  // is data-dependent (acquire child, release grandparent), which Clang's
  // thread-safety analysis cannot express, so they opt out with
  // OPTIQL_NO_THREAD_SAFETY_ANALYSIS. The linter's pairing rule and the
  // invariant build cover these paths instead.

  bool Insert(std::string_view key,
              uint64_t value) OPTIQL_NO_THREAD_SAFETY_ANALYSIS {
    // Hold (parent, node) exclusively while descending; all mutations
    // target that pair.
    Node* parent = nullptr;
    int parent_slot = 1;
    uint8_t parent_byte = 0;
    Node* node = root_;
    int slot = 0;
    POps::LockEx(node->lock, slot);
    size_t level = 0;

    while (true) {
      const uint32_t matched = Nodes::MatchPrefix(node, key, level);
      if (matched < node->prefix_len) {
        // Prefix split (requires parent, which the coupling still holds;
        // the root has no prefix so parent != null here).
        OPTIQL_CHECK(parent != nullptr);
        if (level + matched >= key.size()) {
          return FinishWrite(parent, parent_slot, node, slot, false);
        }
        Node* split = Nodes::NewNode(NodeType::kNode4);
        split->prefix_len = static_cast<uint8_t>(matched);
        std::memcpy(split->prefix, node->prefix, matched);
        const uint8_t node_route = node->prefix[matched];
        const uint8_t new_len =
            static_cast<uint8_t>(node->prefix_len - matched - 1);
        std::memmove(node->prefix, node->prefix + matched + 1, new_len);
        node->prefix_len = new_len;

        typename Nodes::LeafRecord* leaf = Nodes::NewLeaf(key, value);
        Nodes::AddChild(split, node_route, node);
        Nodes::AddChild(split, static_cast<uint8_t>(key[level + matched]),
                        Nodes::TagLeaf(leaf));
        Nodes::ReplaceChild(parent, parent_byte, split);
        size_.fetch_add(1, std::memory_order_acq_rel);
        return FinishWrite(parent, parent_slot, node, slot, true);
      }
      level += node->prefix_len;
      if (level >= key.size()) {
        return FinishWrite(parent, parent_slot, node, slot, false);
      }
      const uint8_t byte = static_cast<uint8_t>(key[level]);
      void* child = Nodes::FindChild(node, byte);
      // Warm the child (header + lock word) before coupling onto it.
      Nodes::PrefetchChild(child);

      if (child == nullptr) {
        if (Nodes::IsNodeFull(node)) {
          OPTIQL_CHECK(parent != nullptr);  // Root never fills.
          Node* bigger = Nodes::GrowNode(node);
          typename Nodes::LeafRecord* leaf = Nodes::NewLeaf(key, value);
          Nodes::AddChild(bigger, byte, Nodes::TagLeaf(leaf));
          Nodes::ReplaceChild(parent, parent_byte, bigger);
          size_.fetch_add(1, std::memory_order_acq_rel);
          FinishWrite(parent, parent_slot, node, slot, true);
          // Safe to free immediately: all paths to `node` go through the
          // parent we held exclusively.
          Nodes::DeleteNode(node);
          return true;
        }
        typename Nodes::LeafRecord* leaf = Nodes::NewLeaf(key, value);
        Nodes::AddChild(node, byte, Nodes::TagLeaf(leaf));
        size_.fetch_add(1, std::memory_order_acq_rel);
        return FinishWrite(parent, parent_slot, node, slot, true);
      }

      if (Nodes::IsLeaf(child)) {
        typename Nodes::LeafRecord* existing = Nodes::AsLeaf(child);
        if (Nodes::LeafMatches(existing, key)) {
          return FinishWrite(parent, parent_slot, node, slot, false);
        }
        const size_t max_common =
            std::min<size_t>(existing->key_len, key.size());
        size_t divergence = level + 1;
        while (divergence < max_common &&
               existing->key[divergence] ==
                   static_cast<uint8_t>(key[divergence])) {
          ++divergence;
        }
        if (divergence >= max_common) {  // Prefix-free violation.
          return FinishWrite(parent, parent_slot, node, slot, false);
        }
        void* merged = Nodes::BuildDivergingPath(existing, key, value,
                                                 level + 1, divergence);
        Nodes::ReplaceChild(node, byte, merged);
        size_.fetch_add(1, std::memory_order_acq_rel);
        return FinishWrite(parent, parent_slot, node, slot, true);
      }

      // Inner child: couple downward. Release the old parent first (its
      // role is over), lock the child, then shift the window.
      if (parent != nullptr) POps::UnlockEx(parent->lock, parent_slot);
      Node* next = Nodes::AsNode(child);
      const int next_slot = 1 - slot;
      POps::LockEx(next->lock, next_slot);
      parent = node;
      parent_slot = slot;
      parent_byte = byte;
      node = next;
      slot = next_slot;
      ++level;
    }
  }

  bool Update(std::string_view key,
              uint64_t value) OPTIQL_NO_THREAD_SAFETY_ANALYSIS {
    // Updates only touch the leaf record under its owning node's lock:
    // simple exclusive coupling with a single held lock.
    Node* node = root_;
    int slot = 0;
    POps::LockEx(node->lock, slot);
    size_t level = 0;
    while (true) {
      const uint32_t matched = Nodes::MatchPrefix(node, key, level);
      if (matched < node->prefix_len ||
          level + node->prefix_len >= key.size()) {
        POps::UnlockEx(node->lock, slot);
        return false;
      }
      level += node->prefix_len;
      const uint8_t byte = static_cast<uint8_t>(key[level]);
      void* child = Nodes::FindChild(node, byte);
      Nodes::PrefetchChild(child);
      if (child == nullptr) {
        POps::UnlockEx(node->lock, slot);
        return false;
      }
      if (Nodes::IsLeaf(child)) {
        typename Nodes::LeafRecord* leaf = Nodes::AsLeaf(child);
        const bool match = Nodes::LeafMatches(leaf, key);
        if (match) leaf->value.store(value, std::memory_order_relaxed);
        POps::UnlockEx(node->lock, slot);
        return match;
      }
      Node* next = Nodes::AsNode(child);
      const int next_slot = 1 - slot;
      POps::LockEx(next->lock, next_slot);
      POps::UnlockEx(node->lock, slot);
      node = next;
      slot = next_slot;
      ++level;
    }
  }

  bool Lookup(std::string_view key,
              uint64_t& out) const OPTIQL_NO_THREAD_SAFETY_ANALYSIS {
    const Node* node = root_;
    int slot = 0;
    POps::LockSh(const_cast<Node*>(node)->lock, slot);
    size_t level = 0;
    while (true) {
      const uint32_t matched = Nodes::MatchPrefix(node, key, level);
      if (matched < node->prefix_len ||
          level + node->prefix_len >= key.size()) {
        POps::UnlockSh(const_cast<Node*>(node)->lock, slot);
        return false;
      }
      level += node->prefix_len;
      const uint8_t byte = static_cast<uint8_t>(key[level]);
      void* child = Nodes::FindChild(node, byte);
      Nodes::PrefetchChild(child);
      if (child == nullptr) {
        POps::UnlockSh(const_cast<Node*>(node)->lock, slot);
        return false;
      }
      if (Nodes::IsLeaf(child)) {
        const typename Nodes::LeafRecord* leaf = Nodes::AsLeaf(child);
        const bool match = Nodes::LeafMatches(leaf, key);
        if (match) out = leaf->value.load(std::memory_order_relaxed);
        POps::UnlockSh(const_cast<Node*>(node)->lock, slot);
        return match;
      }
      const Node* next = Nodes::AsNode(child);
      const int next_slot = 1 - slot;
      POps::LockSh(const_cast<Node*>(next)->lock, next_slot);
      POps::UnlockSh(const_cast<Node*>(node)->lock, slot);
      node = next;
      slot = next_slot;
      ++level;
    }
  }

  bool Remove(std::string_view key) OPTIQL_NO_THREAD_SAFETY_ANALYSIS {
    Node* node = root_;
    int slot = 0;
    POps::LockEx(node->lock, slot);
    size_t level = 0;
    while (true) {
      const uint32_t matched = Nodes::MatchPrefix(node, key, level);
      if (matched < node->prefix_len ||
          level + node->prefix_len >= key.size()) {
        POps::UnlockEx(node->lock, slot);
        return false;
      }
      level += node->prefix_len;
      const uint8_t byte = static_cast<uint8_t>(key[level]);
      void* child = Nodes::FindChild(node, byte);
      Nodes::PrefetchChild(child);
      if (child == nullptr) {
        POps::UnlockEx(node->lock, slot);
        return false;
      }
      if (Nodes::IsLeaf(child)) {
        typename Nodes::LeafRecord* leaf = Nodes::AsLeaf(child);
        if (!Nodes::LeafMatches(leaf, key)) {
          POps::UnlockEx(node->lock, slot);
          return false;
        }
        Nodes::RemoveChild(node, byte);
        size_.fetch_sub(1, std::memory_order_acq_rel);
        POps::UnlockEx(node->lock, slot);
        Nodes::FreeLeaf(leaf);  // No optimistic readers in this variant.
        return true;
      }
      Node* next = Nodes::AsNode(child);
      const int next_slot = 1 - slot;
      POps::LockEx(next->lock, next_slot);
      POps::UnlockEx(node->lock, slot);
      node = next;
      slot = next_slot;
      ++level;
    }
  }

  // --- Fixed 8-byte integer key convenience (big-endian encoded) ---

  bool InsertInt(uint64_t key, uint64_t value) {
    const uint64_t be = ToBigEndian(key);
    return Insert({reinterpret_cast<const char*>(&be), 8}, value);
  }
  bool UpdateInt(uint64_t key, uint64_t value) {
    const uint64_t be = ToBigEndian(key);
    return Update({reinterpret_cast<const char*>(&be), 8}, value);
  }
  bool LookupInt(uint64_t key, uint64_t& out) const {
    const uint64_t be = ToBigEndian(key);
    return Lookup({reinterpret_cast<const char*>(&be), 8}, out);
  }
  bool RemoveInt(uint64_t key) {
    const uint64_t be = ToBigEndian(key);
    return Remove({reinterpret_cast<const char*>(&be), 8});
  }

  size_t Size() const { return size_.load(std::memory_order_acquire); }

  // Interface parity with ArtTree (this variant never expands).
  uint64_t ContentionExpansions() const { return 0; }

  void CheckInvariants() const {
    size_t leaves = 0;
    uint8_t key_buffer[512];
    Nodes::CheckSubtree(root_, key_buffer, 0, &leaves);
    OPTIQL_CHECK(leaves == Size());
  }

 private:
  using Nodes = ArtNodes<RwLock>;
  using Node = typename Nodes::Node;
  using NodeType = typename Nodes::NodeType;
  using POps = TxnOps<RwLock>;

  // Releases the held (parent, node) window and forwards the result.
  bool FinishWrite(Node* parent, int parent_slot, Node* node, int slot,
                   bool result) OPTIQL_NO_THREAD_SAFETY_ANALYSIS {
    POps::UnlockEx(node->lock, slot);
    if (parent != nullptr) POps::UnlockEx(parent->lock, parent_slot);
    return result;
  }

  Node* const root_;
  std::atomic<size_t> size_{0};
};

}  // namespace optiql

#endif  // OPTIQL_INDEX_ART_COUPLING_H_
