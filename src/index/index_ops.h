// The one uniform operation surface over every index in the repo.
//
// The indexes grew three incompatible point-op interfaces: the B+-tree and
// hash table take integer keys directly (Insert/Lookup/...), ART exposes
// byte-string ops plus an *Int convenience suffix (InsertInt/LookupInt/...),
// and capabilities like Scan, BulkLoad, Upsert or NodeCount exist only on
// some of them. Every consumer (harness, trace replay, benches, examples)
// used to roll its own duck-typed shims over that split; this header is now
// the single home for both:
//
//   * capability detection — the Has*Op concepts below; nothing outside
//     this file may re-derive what an index can do, and
//   * the uniform free functions — IndexInsert/IndexUpdate/IndexLookup/
//     IndexRemove/IndexUpsert/IndexScan — which dispatch to whichever
//     spelling the index provides.
//
// Anything satisfying IndexLike (including composites such as
// ShardedStore, which itself routes through these functions) runs through
// the whole harness / replay / bench stack unchanged.
#ifndef OPTIQL_INDEX_INDEX_OPS_H_
#define OPTIQL_INDEX_INDEX_OPS_H_

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "sync/epoch.h"
#include "sync/txn_ops.h"

namespace optiql {

// --- Capability detection (defined HERE and nowhere else) ------------------

// Native integer point ops: B+-tree, hash table, sharded store.
template <class Index>
concept HasNativeIntOps =
    requires(Index t, const Index c, uint64_t k, uint64_t v, uint64_t& out) {
      { t.Insert(k, v) } -> std::same_as<bool>;
      { t.Update(k, v) } -> std::same_as<bool>;
      { c.Lookup(k, out) } -> std::same_as<bool>;
      { t.Remove(k) } -> std::same_as<bool>;
    };

// ART-style integer convenience suffix over a byte-string core.
template <class Index>
concept HasIntSuffixOps =
    requires(Index t, const Index c, uint64_t k, uint64_t v, uint64_t& out) {
      { t.InsertInt(k, v) } -> std::same_as<bool>;
      { t.UpdateInt(k, v) } -> std::same_as<bool>;
      { c.LookupInt(k, out) } -> std::same_as<bool>;
      { t.RemoveInt(k) } -> std::same_as<bool>;
    };

// Anything the harness, trace replay and benches can drive.
template <class Index>
concept IndexLike = HasNativeIntOps<Index> || HasIntSuffixOps<Index>;

// Ascending range scan (B+-tree, sharded store; ART has none).
template <class Index>
concept HasScanOp =
    requires(const Index t, uint64_t k, size_t n,
             std::vector<std::pair<uint64_t, uint64_t>>& out) {
      { t.Scan(k, n, out) } -> std::same_as<size_t>;
    };

// Native insert-or-update (B+-tree, hash table, sharded store).
template <class Index>
concept HasUpsertOp = requires(Index t, uint64_t k, uint64_t v) {
  t.Upsert(k, v);
};

// Sorted bottom-up bulk load into an empty index.
template <class Index>
concept HasBulkLoadOp =
    requires(Index t, const std::vector<std::pair<uint64_t, uint64_t>>& p) {
      t.BulkLoad(p);
    };

// Live structural node count (steady-state churn reporting).
template <class Index>
concept HasNodeCountOp = requires(const Index t) {
  { t.NodeCount() } -> std::convertible_to<size_t>;
};

// Single-threaded structural self-check.
template <class Index>
concept HasCheckInvariantsOp = requires(const Index t) {
  t.CheckInvariants();
};

// Versioned key routing (the sharded store's epoch-published routing
// table). Even versions are steady state; odd versions mean a shard
// migration window is open. The txn layer snapshots this at begin and
// aborts at commit on any change (or an open window), because transactions
// resolve keys to record locks through the table and a moved span would
// silently split a transaction across two record homes.
template <class Index>
concept HasRoutingVersionOp = requires(const Index t) {
  { t.RoutingVersion() } -> std::convertible_to<uint64_t>;
};

// --- Transaction-host capabilities -----------------------------------------
//
// An index is a transaction host when it exposes its record-guarding locks
// to the protocols in src/txn/ through the TxnOps<TxnLock> contract:
// TxnLockRank orders commit-time acquisition, TxnWriteGuard is the
// exclusive record hold, and TxnLockForWrite / TxnTryLockForWrite (template
// members, checked at use) resolve a key to a locked record.

template <class Index>
concept TxnHostIndex = requires(const Index c, uint64_t k) {
  typename Index::TxnLock;
  typename Index::TxnWriteGuard;
  { c.TxnLockRank(k) } -> std::same_as<std::pair<uint64_t, uint64_t>>;
};

// Versioned host: records carry a validatable version word, so OCC can
// run its execution phase lock-free (TxnRead) and validate at commit
// against the same words the single-key operations use.
template <class Index>
concept TxnVersionedHost =
    TxnHostIndex<Index> && VersionedLock<typename Index::TxnLock> &&
    requires(const Index c, uint64_t k, typename Index::TxnReadResult& r) {
      c.TxnRead(k, r);
    };

// Shared-mode host: records are guarded by pessimistic reader-writer
// locks, so 2PL reads hold them shared (TxnTryReadShared) instead of
// validating versions. A write into a record this transaction already
// reads shared must atomically upgrade the hold (a no-wait retry of the
// self-collision would repeat forever), so the host must expose the lock
// address and the upgrade hook — which excludes shared-mode families
// without an atomic upgrade (TxnOps kHasShUpgrade, e.g. shared_mutex).
template <class Index>
concept TxnSharedReadHost =
    TxnHostIndex<Index> && SharedModeLock<typename Index::TxnLock> &&
    requires(Index m, const Index c, uint64_t k, int slot, uint32_t n,
             typename Index::TxnWriteGuard& g) {
      { c.TxnLockAddr(k) } -> std::same_as<const typename Index::TxnLock*>;
      { m.TxnTryUpgradeForWrite(k, slot, n, g) } ->
          std::same_as<TxnLockStatus>;
    };

// --- Uniform point operations ----------------------------------------------
//
// Dispatch prefers the *Int suffix when both spellings exist (ART's
// byte-string ops would otherwise reject an integer key outright).

template <IndexLike Index>
bool IndexInsert(Index& index, uint64_t key, uint64_t value) {
  if constexpr (HasIntSuffixOps<Index>) {
    return index.InsertInt(key, value);
  } else {
    return index.Insert(key, value);
  }
}

template <IndexLike Index>
bool IndexUpdate(Index& index, uint64_t key, uint64_t value) {
  if constexpr (HasIntSuffixOps<Index>) {
    return index.UpdateInt(key, value);
  } else {
    return index.Update(key, value);
  }
}

template <IndexLike Index>
bool IndexLookup(const Index& index, uint64_t key, uint64_t& out) {
  if constexpr (HasIntSuffixOps<Index>) {
    return index.LookupInt(key, out);
  } else {
    return index.Lookup(key, out);
  }
}

template <IndexLike Index>
bool IndexRemove(Index& index, uint64_t key) {
  if constexpr (HasIntSuffixOps<Index>) {
    return index.RemoveInt(key);
  } else {
    return index.Remove(key);
  }
}

// Insert-or-update. Indexes without a native Upsert get an update-then-
// insert loop: under concurrency either arm can lose its race (the key
// appears between the failed update and the insert, or vice versa), but
// one arm must eventually win.
template <IndexLike Index>
void IndexUpsert(Index& index, uint64_t key, uint64_t value) {
  if constexpr (HasUpsertOp<Index>) {
    index.Upsert(key, value);
  } else {
    while (!IndexUpdate(index, key, value)) {
      if (IndexInsert(index, key, value)) return;
    }
  }
}

// Ascending range scan from `start` (inclusive), up to `limit` pairs.
// Only defined for scan-capable indexes; callers that want a degraded
// point-probe fallback branch on HasScanOp themselves (trace replay turns
// scans into lookups for ART, reporting zero scanned pairs).
template <IndexLike Index>
  requires HasScanOp<Index>
size_t IndexScan(const Index& index, uint64_t start, size_t limit,
                 std::vector<std::pair<uint64_t, uint64_t>>& out) {
  return index.Scan(start, limit, out);
}

// Structural self-check; no-op for indexes without one so generic tests
// can sprinkle it unconditionally.
template <IndexLike Index>
void IndexCheckInvariants(const Index& index) {
  if constexpr (HasCheckInvariantsOp<Index>) {
    index.CheckInvariants();
  }
}

// --- Batched operations ------------------------------------------------------
//
// Span-of-ops in, span-of-results out. The contract, for every dispatch arm:
//
//   * results are identical to executing the ops one at a time, in batch
//     order — duplicates inside one batch behave like sequential execution;
//   * `found[i]` / `ok[i]` is written for every i; `values[i]` is written
//     only where `found[i]` is true;
//   * the whole batch runs under one amortized EpochGuard (Enter/Exit is
//     re-entrant, so indexes that open their own per-op guard nest freely).
//
// Indexes with a native batch entry point (interleaved multi-descent in the
// B+-tree and ART, group-prefetched probes in the hash table, per-shard
// dispatch in ShardedStore) are detected below; everything else — including
// the pessimistic coupling variants — gets the guard + loop fallback, so all
// index types keep working.

// Native batched point lookup (integer keys directly).
template <class Index>
concept HasLookupBatchOp =
    requires(const Index c, const uint64_t* k, size_t n, uint64_t* v,
             bool* f) {
      { c.LookupBatch(k, n, v, f) } -> std::same_as<size_t>;
    };

// ART-style Int suffix for the batched lookup over a byte-string core.
template <class Index>
concept HasLookupBatchIntOp =
    requires(const Index c, const uint64_t* k, size_t n, uint64_t* v,
             bool* f) {
      { c.LookupBatchInt(k, n, v, f) } -> std::same_as<size_t>;
    };

// Native batched insert: ok[i] = "key i was absent and is now present".
template <class Index>
concept HasInsertBatchOp =
    requires(Index t, const uint64_t* k, const uint64_t* v, size_t n,
             bool* ok) {
      { t.InsertBatch(k, v, n, ok) } -> std::same_as<size_t>;
    };

// Native batched insert-or-update.
template <class Index>
concept HasUpsertBatchOp =
    requires(Index t, const uint64_t* k, const uint64_t* v, size_t n) {
      t.UpsertBatch(k, v, n);
    };

// Batched point lookup; returns the number of hits.
template <IndexLike Index>
size_t IndexLookupBatch(const Index& index, const uint64_t* keys, size_t n,
                        uint64_t* values, bool* found) {
  if constexpr (HasLookupBatchIntOp<Index>) {
    return index.LookupBatchInt(keys, n, values, found);
  } else if constexpr (HasLookupBatchOp<Index>) {
    return index.LookupBatch(keys, n, values, found);
  } else {
    EpochGuard guard;
    size_t hits = 0;
    for (size_t i = 0; i < n; ++i) {
      found[i] = IndexLookup(index, keys[i], values[i]);
      if (found[i]) ++hits;
    }
    return hits;
  }
}

// Batched insert; returns the number of keys actually inserted.
template <IndexLike Index>
size_t IndexInsertBatch(Index& index, const uint64_t* keys,
                        const uint64_t* values, size_t n, bool* ok) {
  if constexpr (HasInsertBatchOp<Index>) {
    return index.InsertBatch(keys, values, n, ok);
  } else {
    EpochGuard guard;
    size_t applied = 0;
    for (size_t i = 0; i < n; ++i) {
      ok[i] = IndexInsert(index, keys[i], values[i]);
      if (ok[i]) ++applied;
    }
    return applied;
  }
}

// Batched insert-or-update; duplicates in one batch resolve to the last
// occurrence's value, exactly as sequential upserts would.
template <IndexLike Index>
void IndexUpsertBatch(Index& index, const uint64_t* keys,
                      const uint64_t* values, size_t n) {
  if constexpr (HasUpsertBatchOp<Index>) {
    index.UpsertBatch(keys, values, n);
  } else {
    EpochGuard guard;
    for (size_t i = 0; i < n; ++i) {
      IndexUpsert(index, keys[i], values[i]);
    }
  }
}

}  // namespace optiql

#endif  // OPTIQL_INDEX_INDEX_OPS_H_
