// Concurrent chaining hash table with one lock per bucket — a third index
// substrate demonstrating that OptiQL is general-purpose beyond hierarchical
// indexes (paper §1.2; cf. Dash [34], an optimistic-lock hash index).
//
// A hash table is the cleanest possible host for the lock comparison: there
// is no lock coupling, no SMO hierarchy and no upgrade protocol — every
// operation touches exactly one bucket lock, so the bucket-lock behaviour
// under skew is the entire story.
//
// All lock access goes through TxnOps<Lock> (sync/txn_ops.h), so any family
// in that contract can serve as the bucket lock:
//
//   * versioned families (OptLock, OptiQL, OptiCLH) — readers walk the
//     chain optimistically, validating every pointer against the bucket
//     version before dereferencing it; writers hold the lock exclusively.
//   * shared-mode families (MCS-RW, shared_mutex) — readers hold the
//     bucket shared for the walk; no versions, no restarts.
//
// The table is also a transaction host: TxnRead / TxnLockForWrite /
// TxnLockRank expose the bucket locks to the OCC and 2PL protocols in
// src/txn/, with OCC validating against the very same bucket version words
// the single-key operations use (no shadow version table).
//
// The bucket array is sized at construction (power of two); no online
// resizing — like most partitioned OLTP hash indexes, capacity is
// provisioned up front. Unlinked entries are retired through the epoch
// manager so optimistic readers can keep walking them.
#ifndef OPTIQL_INDEX_HASH_TABLE_H_
#define OPTIQL_INDEX_HASH_TABLE_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <utility>

#include "common/check.h"
#include "common/platform.h"
#include "core/optiql.h"
#include "locks/optlock.h"
#include "qnode/qnode_pool.h"
#include "sync/epoch.h"
#include "sync/txn_ops.h"

namespace optiql {

struct HashOlcPolicy {
  using Lock = OptLock;
};

template <class QlLock = OptiQL>
struct HashOptiQlPolicy {
  using Lock = QlLock;
};

// Any lock family in the TxnOps contract (e.g. OptiCLH, McsRwLock).
template <class L>
struct HashLockPolicy {
  using Lock = L;
};

template <class SyncPolicy = HashOlcPolicy>
class HashTable {
 public:
  using Lock = typename SyncPolicy::Lock;
  using Ops = TxnOps<Lock>;
  using TxnLock = Lock;

  explicit HashTable(size_t buckets = 1 << 16)
      : mask_(std::bit_ceil(buckets) - 1),
        buckets_(new Bucket[mask_ + 1]) {}

  ~HashTable() {
    for (size_t i = 0; i <= mask_; ++i) {
      Entry* e = buckets_[i].head;
      while (e != nullptr) {
        Entry* next = e->next;
        delete e;
        e = next;
      }
    }
    delete[] buckets_;
    EpochManager::Instance().ReclaimIfPossible();
  }

  HashTable(const HashTable&) = delete;
  HashTable& operator=(const HashTable&) = delete;

  // Inserts (key, value); false if the key exists.
  bool Insert(uint64_t key, uint64_t value) {
    EpochGuard guard;
    Bucket& bucket = BucketFor(key);
    ExclusiveBucket ex(bucket);
    for (Entry* e = bucket.head; e != nullptr; e = e->next) {
      if (e->key == key) return false;
    }
    bucket.head = new Entry{key, {value}, bucket.head};
    size_.fetch_add(1, std::memory_order_acq_rel);
    return true;
  }

  // Updates an existing key; false if absent.
  bool Update(uint64_t key, uint64_t value) {
    EpochGuard guard;
    Bucket& bucket = BucketFor(key);
    ExclusiveBucket ex(bucket);
    for (Entry* e = bucket.head; e != nullptr; e = e->next) {
      if (e->key == key) {
        e->value.store(value, std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  }

  void Upsert(uint64_t key, uint64_t value) {
    EpochGuard guard;
    Bucket& bucket = BucketFor(key);
    ExclusiveBucket ex(bucket);
    for (Entry* e = bucket.head; e != nullptr; e = e->next) {
      if (e->key == key) {
        e->value.store(value, std::memory_order_relaxed);
        return;
      }
    }
    bucket.head = new Entry{key, {value}, bucket.head};
    size_.fetch_add(1, std::memory_order_acq_rel);
  }

  // Point lookup: optimistic for versioned families, shared-locked walk
  // for reader-writer families.
  bool Lookup(uint64_t key, uint64_t& out) const {
    EpochGuard guard;
    if constexpr (Ops::kVersioned) {
      const Bucket& bucket = BucketFor(key);
      while (true) {
        uint64_t v;
        SpinWait wait;
        while (!Ops::StableVersion(bucket.lock, v)) wait.Spin();
        // Chain walk with per-step validation: a pointer read under version
        // v is only dereferenced after v re-validates.
        const Entry* e = bucket.head;
        if (!Ops::ValidateVersion(bucket.lock, v)) continue;
        bool found = false;
        uint64_t value = 0;
        bool restart = false;
        while (e != nullptr) {
          const uint64_t entry_key = e->key;
          const uint64_t entry_value =
              e->value.load(std::memory_order_relaxed);
          const Entry* next = e->next;
          if (!Ops::ValidateVersion(bucket.lock, v)) {
            restart = true;
            break;
          }
          if (entry_key == key) {
            found = true;
            value = entry_value;
            break;
          }
          e = next;
        }
        if (restart) continue;
        if (!Ops::ValidateVersion(bucket.lock, v)) continue;
        if (found) out = value;
        return found;
      }
    } else {
      Bucket& bucket = const_cast<Bucket&>(BucketFor(key));
      Ops::LockSh(bucket.lock, /*slot=*/0);
      bool found = false;
      for (const Entry* e = bucket.head; e != nullptr; e = e->next) {
        if (e->key == key) {
          out = e->value.load(std::memory_order_relaxed);
          found = true;
          break;
        }
      }
      Ops::UnlockSh(bucket.lock, /*slot=*/0);
      return found;
    }
  }

  // Batched point lookup: one EpochGuard for the whole batch, and the
  // bucket headers of a group of probes are prefetched together before any
  // chain walk starts, so the (hash-scattered) bucket misses overlap.
  // There is no descent to interleave — a probe touches one bucket — so a
  // prefetch group is the whole AMAC story here. `found[i]` is written for
  // every i; `values[i]` only where `found[i]` is true. Returns the number
  // of hits; results are identical to per-key Lookup in batch order.
  size_t LookupBatch(const uint64_t* keys, size_t n, uint64_t* values,
                     bool* found) const {
    EpochGuard guard;
    constexpr size_t kGroup = 16;
    size_t hits = 0;
    for (size_t base = 0; base < n; base += kGroup) {
      const size_t count = n - base < kGroup ? n - base : kGroup;
      for (size_t i = 0; i < count; ++i) {
        PrefetchRead(&BucketFor(keys[base + i]));
      }
      for (size_t i = 0; i < count; ++i) {
        found[base + i] = Lookup(keys[base + i], values[base + i]);
        if (found[base + i]) ++hits;
      }
    }
    return hits;
  }

  // Removes the key; false if absent.
  bool Remove(uint64_t key) {
    EpochGuard guard;
    Bucket& bucket = BucketFor(key);
    ExclusiveBucket ex(bucket);
    Entry** link = &bucket.head;
    for (Entry* e = bucket.head; e != nullptr; e = e->next) {
      if (e->key == key) {
        *link = e->next;
        size_.fetch_sub(1, std::memory_order_acq_rel);
        // Readers may still be walking through the entry.
        EpochManager::Instance().Retire(e, [](void* p) {
          delete static_cast<Entry*>(p);
        });
        return true;
      }
      link = &e->next;
    }
    return false;
  }

  size_t Size() const { return size_.load(std::memory_order_acquire); }
  size_t BucketCount() const { return mask_ + 1; }

  // Single-threaded check: every entry hashes to its bucket; counts match.
  void CheckInvariants() const {
    size_t entries = 0;
    for (size_t i = 0; i <= mask_; ++i) {
      for (const Entry* e = buckets_[i].head; e != nullptr; e = e->next) {
        OPTIQL_CHECK((Mix(e->key) & mask_) == i);
        ++entries;
      }
    }
    OPTIQL_CHECK(entries == Size());
  }

  // --- Transaction-layer hooks (src/txn/) ---
  //
  // The caller (a TxnContext) holds one EpochGuard for the whole
  // transaction, so entry pointers captured here stay dereferenceable
  // until it commits or aborts.

 private:
  struct Entry;
  struct Bucket;

 public:
  struct TxnReadResult {
    bool found = false;
    uint64_t value = 0;
    const Lock* lock = nullptr;  // bucket lock guarding the record
    uint64_t version = 0;        // validated snapshot of that word
  };

  // OCC execution-phase read: a validated snapshot of the record plus the
  // bucket word commit-time validation re-checks. Must not be called while
  // the transaction holds bucket locks (it can spin on a held bucket).
  void TxnRead(uint64_t key, TxnReadResult& out) const
    requires(Ops::kVersioned)
  {
    const Bucket& bucket = BucketFor(key);
    while (true) {
      uint64_t v;
      SpinWait wait;
      while (!Ops::StableVersion(bucket.lock, v)) wait.Spin();
      const Entry* e = bucket.head;
      if (!Ops::ValidateVersion(bucket.lock, v)) continue;
      bool found = false;
      uint64_t value = 0;
      bool restart = false;
      while (e != nullptr) {
        const uint64_t entry_key = e->key;
        const uint64_t entry_value = e->value.load(std::memory_order_relaxed);
        const Entry* next = e->next;
        if (!Ops::ValidateVersion(bucket.lock, v)) {
          restart = true;
          break;
        }
        if (entry_key == key) {
          found = true;
          value = entry_value;
          break;
        }
        e = next;
      }
      if (restart) continue;
      if (!Ops::ValidateVersion(bucket.lock, v)) continue;
      out.found = found;
      out.value = value;
      out.lock = &bucket.lock;
      out.version = v;
      return;
    }
  }

  // Exclusive record hold for the transaction layer. Non-owning guards
  // piggyback on a lock the transaction already holds (two keys can share
  // a bucket), so only the owning guard releases.
  class TxnWriteGuard {
   public:
    TxnWriteGuard() = default;

    const Lock* LockPtr() const { return &bucket_->lock; }
    uint64_t Read() const {
      return entry_->value.load(std::memory_order_relaxed);
    }
    void Install(uint64_t value) {
      OPTIQL_INVARIANT(bucket_ != nullptr && entry_ != nullptr,
                       "Install on a guard that never locked a record");
      entry_->value.store(value, std::memory_order_release);
    }
    uint64_t HeldVersion() const
      requires(Ops::kVersioned)
    {
      return Ops::HeldVersion(bucket_->lock, handle_);
    }
    bool owns() const { return owns_; }

    // Releases the bucket. `installed` == false releases without a version
    // bump where the family supports it, so pure-abort unlocks do not
    // invalidate concurrent readers.
    void Unlock(bool installed) {
      if (!owns_) return;
      owns_ = false;
      if constexpr (Ops::kVersioned) {
        if constexpr (Ops::kHasNoBump) {
          if (!installed) {
            Ops::UnlockExNoBump(bucket_->lock, handle_);
            return;
          }
        }
        (void)installed;
        Ops::UnlockEx(bucket_->lock, handle_);
      } else {
        (void)installed;
        Ops::UnlockEx(bucket_->lock, slot_);
      }
    }

   private:
    friend class HashTable;
    Bucket* bucket_ = nullptr;
    Entry* entry_ = nullptr;
    int slot_ = 0;
    bool owns_ = false;
    typename Ops::ExHandle handle_{};
  };

  // Commit-time record lock, blocking: queue-based families wait in the
  // bucket queue (the OptiQL robustness story at transaction granularity).
  // `already_held` reports bucket locks this transaction already owns.
  template <class HeldContains>
  TxnLockStatus TxnLockForWrite(uint64_t key, int slot,
                                const HeldContains& already_held,
                                TxnWriteGuard& guard) {
    Bucket& bucket = BucketFor(key);
    if (already_held(&bucket.lock)) {
      return BindHeldGuard(bucket, key, guard);
    }
    guard.bucket_ = &bucket;
    guard.slot_ = slot;
    guard.owns_ = true;
    if constexpr (Ops::kVersioned) {
      guard.handle_ = Ops::LockEx(bucket.lock, slot);
    } else {
      Ops::LockEx(bucket.lock, slot);
    }
    return FindLockedEntry(bucket, key, guard);
  }

  // No-wait variant (2PL deadlock avoidance): a held bucket means kBusy,
  // never a wait.
  template <class HeldContains>
  TxnLockStatus TxnTryLockForWrite(uint64_t key, int slot,
                                   const HeldContains& already_held,
                                   TxnWriteGuard& guard) {
    Bucket& bucket = BucketFor(key);
    if (already_held(&bucket.lock)) {
      return BindHeldGuard(bucket, key, guard);
    }
    guard.bucket_ = &bucket;
    guard.slot_ = slot;
    if (!Ops::TryLockEx(bucket.lock, slot, guard.handle_)) {
      return TxnLockStatus::kBusy;
    }
    guard.owns_ = true;
    return FindLockedEntry(bucket, key, guard);
  }

  // 2PL read for shared-mode families: try-acquire the bucket shared (no
  // wait) and read under it. On kAcquired with a non-null `lock` the bucket
  // stays held shared — the transaction releases it at commit/abort with
  // TxnOps::UnlockShNoQueue. `held_ex` reports buckets this transaction
  // already holds exclusively (read-your-writes without an upgrade; then
  // `lock` comes back null and nothing new is held).
  template <class HeldContains>
  TxnLockStatus TxnTryReadShared(uint64_t key, const HeldContains& held_ex,
                                 bool& found, uint64_t& value,
                                 const Lock*& lock)
    requires(Ops::kSharedMode)
  {
    Bucket& bucket = BucketFor(key);
    lock = nullptr;
    if (!held_ex(&bucket.lock)) {
      if (!Ops::TryLockSh(bucket.lock)) return TxnLockStatus::kBusy;
      lock = &bucket.lock;
    }
    found = false;
    for (const Entry* e = bucket.head; e != nullptr; e = e->next) {
      if (e->key == key) {
        value = e->value.load(std::memory_order_relaxed);
        found = true;
        break;
      }
    }
    return TxnLockStatus::kAcquired;
  }

  // The lock every txn hook above resolves for `key` — lets the
  // transaction layer detect that a write targets a bucket it already
  // holds shared and upgrade instead of self-aborting forever.
  const Lock* TxnLockAddr(uint64_t key) const { return &BucketFor(key).lock; }

  // Converts this transaction's `my_holds` queue-less shared holds on the
  // key's bucket into an exclusive hold, atomically — no release window,
  // so values read under those holds stay protected across the upgrade.
  // kBusy = other readers/writers are active and nothing changed; on any
  // other outcome the shared holds are consumed (kAbsent also releases
  // the just-won exclusive hold, like TxnTryLockForWrite).
  TxnLockStatus TxnTryUpgradeForWrite(uint64_t key, int slot,
                                      uint32_t my_holds, TxnWriteGuard& guard)
    requires(Ops::kSharedMode && Ops::kHasShUpgrade)
  {
    Bucket& bucket = BucketFor(key);
    guard.bucket_ = &bucket;
    guard.slot_ = slot;
    if (!Ops::TryUpgradeSh(bucket.lock, slot, my_holds, guard.handle_)) {
      return TxnLockStatus::kBusy;
    }
    guard.owns_ = true;
    return FindLockedEntry(bucket, key, guard);
  }

  // Deadlock-avoidance rank: transactions that lock their write sets in
  // ascending bucket order never cycle.
  std::pair<uint64_t, uint64_t> TxnLockRank(uint64_t key) const {
    return {Mix(key) & mask_, 0};
  }

 private:
  struct Entry {
    uint64_t key;
    std::atomic<uint64_t> value;
    Entry* next;
  };

  struct OPTIQL_CACHELINE_ALIGNED Bucket {
    mutable Lock lock;
    Entry* head = nullptr;
  };

  // RAII exclusive bucket hold through the contract: queue-based policies
  // block directly on the bucket lock (the whole point of OptiQL here),
  // OptLock spins+CASes, reader-writer locks queue as writers.
  class ExclusiveBucket {
   public:
    explicit ExclusiveBucket(Bucket& bucket) : bucket_(bucket) {
      if constexpr (Ops::kVersioned) {
        handle_ = Ops::LockEx(bucket_.lock, /*slot=*/0);
      } else {
        Ops::LockEx(bucket_.lock, /*slot=*/0);
      }
    }
    ~ExclusiveBucket() {
      if constexpr (Ops::kVersioned) {
        Ops::UnlockEx(bucket_.lock, handle_);
      } else {
        Ops::UnlockEx(bucket_.lock, /*slot=*/0);
      }
    }

    ExclusiveBucket(const ExclusiveBucket&) = delete;
    ExclusiveBucket& operator=(const ExclusiveBucket&) = delete;

   private:
    Bucket& bucket_;
    typename Ops::ExHandle handle_{};
  };

  // Completes a guard over a bucket this transaction already holds: the
  // chain is stable under our own exclusive hold, so a plain walk suffices.
  TxnLockStatus BindHeldGuard(Bucket& bucket, uint64_t key,
                              TxnWriteGuard& guard) {
    guard.bucket_ = &bucket;
    guard.owns_ = false;
    for (Entry* e = bucket.head; e != nullptr; e = e->next) {
      if (e->key == key) {
        guard.entry_ = e;
        return TxnLockStatus::kAcquired;
      }
    }
    return TxnLockStatus::kAbsent;
  }

  // Resolves the entry under a freshly taken exclusive hold; releases and
  // reports kAbsent when the key does not exist.
  TxnLockStatus FindLockedEntry(Bucket& bucket, uint64_t key,
                                TxnWriteGuard& guard) {
    for (Entry* e = bucket.head; e != nullptr; e = e->next) {
      if (e->key == key) {
        guard.entry_ = e;
        return TxnLockStatus::kAcquired;
      }
    }
    guard.Unlock(/*installed=*/false);
    return TxnLockStatus::kAbsent;
  }

  // Finalizer from SplitMix64: full-avalanche, so dense keys spread.
  static uint64_t Mix(uint64_t key) {
    key = (key ^ (key >> 30)) * 0xbf58476d1ce4e5b9ULL;
    key = (key ^ (key >> 27)) * 0x94d049bb133111ebULL;
    return key ^ (key >> 31);
  }

  Bucket& BucketFor(uint64_t key) { return buckets_[Mix(key) & mask_]; }
  const Bucket& BucketFor(uint64_t key) const {
    return buckets_[Mix(key) & mask_];
  }

  const size_t mask_;
  Bucket* const buckets_;
  std::atomic<size_t> size_{0};
};

}  // namespace optiql

#endif  // OPTIQL_INDEX_HASH_TABLE_H_
