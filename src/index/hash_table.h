// Concurrent chaining hash table with one lock per bucket — a third index
// substrate demonstrating that OptiQL is general-purpose beyond hierarchical
// indexes (paper §1.2; cf. Dash [34], an optimistic-lock hash index).
//
// A hash table is the cleanest possible host for the lock comparison: there
// is no lock coupling, no SMO hierarchy and no upgrade protocol — every
// operation touches exactly one bucket lock, so the bucket-lock behaviour
// under skew is the entire story.
//
//   * HashOlcPolicy     — OptLock bucket locks; writers upgrade from the
//                         read snapshot (CAS) and restart on failure.
//   * HashOptiQlPolicy  — OptiQL bucket locks; writers block on the queue
//                         directly (no retry storm on hot buckets).
//
// Readers walk the chain optimistically: every pointer is validated against
// the bucket version before being dereferenced, and unlinked entries are
// retired through the epoch manager.
//
// The bucket array is sized at construction (power of two); no online
// resizing — like most partitioned OLTP hash indexes, capacity is
// provisioned up front.
#ifndef OPTIQL_INDEX_HASH_TABLE_H_
#define OPTIQL_INDEX_HASH_TABLE_H_

#include <atomic>
#include <bit>
#include <cstdint>

#include "common/check.h"
#include "common/platform.h"
#include "core/optiql.h"
#include "locks/optlock.h"
#include "qnode/qnode_pool.h"
#include "sync/epoch.h"

namespace optiql {

struct HashOlcPolicy {
  using Lock = OptLock;
  static constexpr bool kQueueBased = false;
};

template <class QlLock = OptiQL>
struct HashOptiQlPolicy {
  using Lock = QlLock;
  static constexpr bool kQueueBased = true;
};

template <class SyncPolicy = HashOlcPolicy>
class HashTable {
 public:
  using Lock = typename SyncPolicy::Lock;
  static constexpr bool kQueueBased = SyncPolicy::kQueueBased;

  explicit HashTable(size_t buckets = 1 << 16)
      : mask_(std::bit_ceil(buckets) - 1),
        buckets_(new Bucket[mask_ + 1]) {}

  ~HashTable() {
    for (size_t i = 0; i <= mask_; ++i) {
      Entry* e = buckets_[i].head;
      while (e != nullptr) {
        Entry* next = e->next;
        delete e;
        e = next;
      }
    }
    delete[] buckets_;
    EpochManager::Instance().ReclaimIfPossible();
  }

  HashTable(const HashTable&) = delete;
  HashTable& operator=(const HashTable&) = delete;

  // Inserts (key, value); false if the key exists.
  bool Insert(uint64_t key, uint64_t value) {
    EpochGuard guard;
    Bucket& bucket = BucketFor(key);
    ExclusiveBucket ex(*this, bucket);
    for (Entry* e = bucket.head; e != nullptr; e = e->next) {
      if (e->key == key) return false;
    }
    bucket.head = new Entry{key, {value}, bucket.head};
    size_.fetch_add(1, std::memory_order_acq_rel);
    return true;
  }

  // Updates an existing key; false if absent.
  bool Update(uint64_t key, uint64_t value) {
    EpochGuard guard;
    Bucket& bucket = BucketFor(key);
    ExclusiveBucket ex(*this, bucket);
    for (Entry* e = bucket.head; e != nullptr; e = e->next) {
      if (e->key == key) {
        e->value.store(value, std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  }

  void Upsert(uint64_t key, uint64_t value) {
    EpochGuard guard;
    Bucket& bucket = BucketFor(key);
    ExclusiveBucket ex(*this, bucket);
    for (Entry* e = bucket.head; e != nullptr; e = e->next) {
      if (e->key == key) {
        e->value.store(value, std::memory_order_relaxed);
        return;
      }
    }
    bucket.head = new Entry{key, {value}, bucket.head};
    size_.fetch_add(1, std::memory_order_acq_rel);
  }

  // Optimistic point lookup.
  bool Lookup(uint64_t key, uint64_t& out) const {
    EpochGuard guard;
    const Bucket& bucket = BucketFor(key);
    while (true) {
      uint64_t v;
      SpinWait wait;
      while (!bucket.lock.AcquireSh(v)) wait.Spin();
      // Chain walk with per-step validation: a pointer read under version
      // v is only dereferenced after v re-validates.
      const Entry* e = bucket.head;
      if (!bucket.lock.ReleaseSh(v)) continue;
      bool found = false;
      uint64_t value = 0;
      bool restart = false;
      while (e != nullptr) {
        const uint64_t entry_key = e->key;
        const uint64_t entry_value =
            e->value.load(std::memory_order_relaxed);
        const Entry* next = e->next;
        if (!bucket.lock.ReleaseSh(v)) {
          restart = true;
          break;
        }
        if (entry_key == key) {
          found = true;
          value = entry_value;
          break;
        }
        e = next;
      }
      if (restart) continue;
      if (!bucket.lock.ReleaseSh(v)) continue;
      if (found) out = value;
      return found;
    }
  }

  // Removes the key; false if absent.
  bool Remove(uint64_t key) {
    EpochGuard guard;
    Bucket& bucket = BucketFor(key);
    ExclusiveBucket ex(*this, bucket);
    Entry** link = &bucket.head;
    for (Entry* e = bucket.head; e != nullptr; e = e->next) {
      if (e->key == key) {
        *link = e->next;
        size_.fetch_sub(1, std::memory_order_acq_rel);
        // Readers may still be walking through the entry.
        EpochManager::Instance().Retire(e, [](void* p) {
          delete static_cast<Entry*>(p);
        });
        return true;
      }
      link = &e->next;
    }
    return false;
  }

  size_t Size() const { return size_.load(std::memory_order_acquire); }
  size_t BucketCount() const { return mask_ + 1; }

  // Single-threaded check: every entry hashes to its bucket; counts match.
  void CheckInvariants() const {
    size_t entries = 0;
    for (size_t i = 0; i <= mask_; ++i) {
      for (const Entry* e = buckets_[i].head; e != nullptr; e = e->next) {
        OPTIQL_CHECK((Mix(e->key) & mask_) == i);
        ++entries;
      }
    }
    OPTIQL_CHECK(entries == Size());
  }

 private:
  struct Entry {
    uint64_t key;
    std::atomic<uint64_t> value;
    Entry* next;
  };

  struct OPTIQL_CACHELINE_ALIGNED Bucket {
    Lock lock;
    Entry* head = nullptr;
  };

  // RAII exclusive bucket hold: queue-based policies block directly on the
  // bucket lock (the whole point of OptiQL here); OptLock spins+CASes.
  class ExclusiveBucket {
   public:
    ExclusiveBucket(HashTable& table, Bucket& bucket) : bucket_(bucket) {
      (void)table;
      if constexpr (kQueueBased) {
        bucket_.lock.AcquireEx(ThreadQNodes::Get(0));
      } else {
        bucket_.lock.AcquireEx();
      }
    }
    ~ExclusiveBucket() {
      if constexpr (kQueueBased) {
        bucket_.lock.ReleaseEx(ThreadQNodes::Get(0));
      } else {
        bucket_.lock.ReleaseEx();
      }
    }

   private:
    Bucket& bucket_;
  };

  // Finalizer from SplitMix64: full-avalanche, so dense keys spread.
  static uint64_t Mix(uint64_t key) {
    key = (key ^ (key >> 30)) * 0xbf58476d1ce4e5b9ULL;
    key = (key ^ (key >> 27)) * 0x94d049bb133111ebULL;
    return key ^ (key >> 31);
  }

  Bucket& BucketFor(uint64_t key) { return buckets_[Mix(key) & mask_]; }
  const Bucket& BucketFor(uint64_t key) const {
    return buckets_[Mix(key) & mask_];
  }

  const size_t mask_;
  Bucket* const buckets_;
  std::atomic<size_t> size_{0};
};

}  // namespace optiql

#endif  // OPTIQL_INDEX_HASH_TABLE_H_
