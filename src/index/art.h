// Adaptive Radix Tree (ART, Leis et al. ICDE'13) with optimistic lock
// coupling (Leis et al., "The ART of Practical Synchronization", DaMoN'16)
// and the paper's OptiQL adaptation (§6.2).
//
// Features:
//   * Adaptive node types Node4 / Node16 / Node48 / Node256 (art_nodes.h).
//   * Lazy expansion: single keys hang off inner nodes as tagged leaf
//     pointers to (key, value) records; lookups verify the full key.
//   * Path compression, pessimistic variant: every compressed byte is
//     stored in the node header. Prefixes are capped at kArtMaxPrefix
//     bytes; longer common prefixes become a chain of nodes. (The paper's
//     8-byte integer keys never exceed the cap; this trades a little
//     memory on long string keys for a much simpler optimistic-read
//     protocol.)
//   * Synchronization policies:
//       ArtOlcPolicy           — OptLock on every node, classic OLC.
//       ArtOptiQlPolicy<L>     — OptiQL (or OptiQL-NOR) on every node.
//         Writers normally promote read snapshots with TryUpgrade (leaving
//         their queue node on the word so later writers queue, §6.2); when
//         an update targets a fully materialized last-level node, the lock
//         is taken *directly* with the blocking queue-based acquire.
//         Contention expansion: nodes repeatedly upgraded by writers count
//         contention (probabilistically); past a threshold, the lazy leaf
//         is expanded into a materialized path so future updates can use
//         the direct queue-based acquire.
//
// The pessimistic lock-coupling variant (MCS-RW / pthread baselines) lives
// in art_coupling.h.
//
// Node replacement (growth, expansion) marks the old node obsolete and
// retires it through the epoch manager; every read or exclusive acquisition
// re-checks the obsolete flag. Readers never dereference a racy pointer
// before re-validating the version that produced it.
//
// Key constraint (standard for ART): the key set must be prefix-free.
// Fixed-size integer keys satisfy this by construction; variable-length
// byte keys can append a terminator. Operations that would violate it
// return false.
#ifndef OPTIQL_INDEX_ART_H_
#define OPTIQL_INDEX_ART_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string_view>

#include "common/check.h"
#include "common/platform.h"
#include "common/random.h"
#include "core/optiql.h"
#include "index/art_nodes.h"
#include "locks/optlock.h"
#include "qnode/qnode_pool.h"
#include "sync/epoch.h"
#include "workload/key_generator.h"

namespace optiql {

struct ArtOlcPolicy {
  using Lock = OptLock;
  static constexpr bool kQueueBased = false;
};

template <class QlLock = OptiQL>
struct ArtOptiQlPolicy {
  using Lock = QlLock;
  static constexpr bool kQueueBased = true;
};

template <class SyncPolicy = ArtOlcPolicy>
class ArtTree {
 public:
  using Lock = typename SyncPolicy::Lock;
  static constexpr bool kQueueBased = SyncPolicy::kQueueBased;

  // Contention expansion parameters (§6.2): a successful upgrade-based
  // exclusive acquisition increments the node's contention counter with
  // probability kContentionSamplingPermille/1000; crossing
  // `contention_threshold` triggers expansion. The paper uses p=0.1 and a
  // threshold of 1024.
  static constexpr uint32_t kContentionSamplingPermille = 100;

  ArtTree() : root_(Nodes::NewNode(NodeType::kNode256)) {}

  explicit ArtTree(uint32_t contention_threshold)
      : contention_threshold_(contention_threshold),
        root_(Nodes::NewNode(NodeType::kNode256)) {}

  ~ArtTree() {
    Nodes::FreeSubtree(root_);
    // Free retired nodes when provably safe; leftovers (pinned by other
    // threads' epochs) are drained by later operations or at thread exit.
    EpochManager::Instance().ReclaimIfPossible();
  }

  ArtTree(const ArtTree&) = delete;
  ArtTree& operator=(const ArtTree&) = delete;

  // --- Byte-string key interface ---

  bool Insert(std::string_view key, uint64_t value) {
    EpochGuard guard;
    while (true) {
      bool ok = false;
      if (InsertAttempt(key, value, &ok)) return ok;
    }
  }

  bool Update(std::string_view key, uint64_t value) {
    EpochGuard guard;
    while (true) {
      bool ok = false;
      if (UpdateAttempt(key, value, &ok)) return ok;
    }
  }

  bool Lookup(std::string_view key, uint64_t& out) const {
    EpochGuard guard;
    while (true) {
      bool ok = false;
      if (LookupAttempt(key, out, &ok)) return ok;
    }
  }

  bool Remove(std::string_view key) {
    EpochGuard guard;
    while (true) {
      bool ok = false;
      if (RemoveAttempt(key, &ok)) return ok;
    }
  }

  // --- Fixed 8-byte integer key convenience (big-endian encoded) ---

  bool InsertInt(uint64_t key, uint64_t value) {
    const uint64_t be = ToBigEndian(key);
    return Insert({reinterpret_cast<const char*>(&be), 8}, value);
  }
  bool UpdateInt(uint64_t key, uint64_t value) {
    const uint64_t be = ToBigEndian(key);
    return Update({reinterpret_cast<const char*>(&be), 8}, value);
  }
  bool LookupInt(uint64_t key, uint64_t& out) const {
    const uint64_t be = ToBigEndian(key);
    return Lookup({reinterpret_cast<const char*>(&be), 8}, out);
  }
  bool RemoveInt(uint64_t key) {
    const uint64_t be = ToBigEndian(key);
    return Remove({reinterpret_cast<const char*>(&be), 8});
  }

  // Interleave bounds for LookupBatchInt: the lane ring lives on the
  // stack, and past ~32 in-flight descents the prefetches start evicting
  // each other instead of overlapping.
  static constexpr size_t kMaxBatchLanes = 32;
  static constexpr size_t kDefaultBatchLanes = 8;

  // Batched integer-key lookup: runs up to `interleave` descents at once
  // as a ring of small state machines (AMAC / group-prefetch style) so
  // their cache-miss chains overlap. One EpochGuard covers the batch.
  // `found[i]` is written for every i; `values[i]` only where `found[i]`
  // is true. Returns the number of hits; results are identical to calling
  // LookupInt per key in batch order.
  size_t LookupBatchInt(const uint64_t* keys, size_t n, uint64_t* values,
                        bool* found,
                        size_t interleave = kDefaultBatchLanes) const {
    if (n == 0) return 0;
    EpochGuard guard;
    size_t lane_count = interleave < n ? interleave : n;
    if (lane_count > kMaxBatchLanes) lane_count = kMaxBatchLanes;
    if (lane_count <= 1) {
      // Amortized-guard loop of singles (the benchmark baseline, and the
      // right call when lane bookkeeping would cost more than it hides).
      size_t hits = 0;
      for (size_t i = 0; i < n; ++i) {
        found[i] = LookupInt(keys[i], values[i]);
        if (found[i]) ++hits;
      }
      return hits;
    }
    return LookupBatchInterleaved(keys, n, values, found, lane_count);
  }

  size_t Size() const { return size_.load(std::memory_order_acquire); }

  // Number of contention expansions performed (diagnostics / ablation).
  uint64_t ContentionExpansions() const {
    return expansions_.load(std::memory_order_acquire);
  }

  // Single-threaded structural check: prefixes and routing bytes of every
  // leaf match its stored key; counts are consistent. Aborts on violation.
  void CheckInvariants() const {
    size_t leaves = 0;
    uint8_t key_buffer[512];
    Nodes::CheckSubtree(root_, key_buffer, 0, &leaves);
    OPTIQL_CHECK(leaves == Size());
  }

  // Number of inner nodes of each type (single-threaded diagnostic;
  // index 0 = Node4 .. 3 = Node256, including the fixed root).
  std::array<size_t, 4> NodeTypeCensus() const {
    std::array<size_t, 4> counts{};
    CensusSubtree(root_, &counts);
    return counts;
  }

 private:
  using Nodes = ArtNodes<Lock>;
  using Node = typename Nodes::Node;
  using NodeType = typename Nodes::NodeType;
  using LeafRecord = typename Nodes::LeafRecord;

  // --- Lock helpers (uniform over OptLock and OptiQL) ---
  //
  // Exclusive ownership is tracked by slot so OptiQL can pass the same
  // queue node to ReleaseEx. Slot 0 = deeper node, slot 1 = parent.

  enum class ReadResult { kOk, kRestart };

  // Snapshots the version, restarting (instead of spinning forever) when
  // the node has been retired.
  ReadResult ReadLockNode(const Node* node, uint64_t* v) const {
    SpinWait wait;
    while (!node->lock.AcquireSh(*v)) {
      if (node->obsolete.load(std::memory_order_acquire)) {
        return ReadResult::kRestart;
      }
      wait.Spin();
    }
    if (node->obsolete.load(std::memory_order_acquire)) {
      return ReadResult::kRestart;
    }
    return ReadResult::kOk;
  }

  static bool ValidateNode(const Node* node, uint64_t v) {
    return node->lock.ReleaseSh(v);
  }

  bool TryUpgradeNode(Node* node, uint64_t v, int slot) {
    bool ok;
    if constexpr (kQueueBased) {
      ok = node->lock.TryUpgrade(v, ThreadQNodes::Get(slot));
    } else {
      (void)slot;
      ok = node->lock.TryUpgrade(v);
    }
    if (!ok) return false;
    if (node->obsolete.load(std::memory_order_acquire)) {
      ReleaseNode(node, slot);
      return false;
    }
    return true;
  }

  void ReleaseNode(Node* node, int slot) {
    if constexpr (kQueueBased) {
      node->lock.ReleaseEx(ThreadQNodes::Get(slot));
    } else {
      (void)slot;
      node->lock.ReleaseEx();
    }
  }

  // --- Operation attempts (return true when finished, false to restart) ---

  bool LookupAttempt(std::string_view key, uint64_t& out, bool* ok) const {
    const Node* node = root_;
    uint64_t v;
    if (ReadLockNode(node, &v) != ReadResult::kOk) return false;
    size_t level = 0;

    while (true) {
      const uint32_t matched = Nodes::MatchPrefix(node, key, level);
      const uint8_t prefix_len = node->prefix_len;
      if (!ValidateNode(node, v)) return false;
      if (matched < prefix_len) {
        *ok = false;  // Prefix mismatch: key absent.
        return true;
      }
      level += prefix_len;
      if (level >= key.size()) {
        *ok = false;  // Key exhausted at an inner node.
        return true;
      }
      void* child = Nodes::FindChild(node, static_cast<uint8_t>(key[level]));
      // Overlap the child's cache miss with the validation; the slot may
      // be torn, but prefetch cannot fault and the pointer is only chased
      // after ValidateNode succeeds.
      Nodes::PrefetchChild(child);
      if (!ValidateNode(node, v)) return false;
      if (child == nullptr) {
        *ok = false;
        return true;
      }
      if (Nodes::IsLeaf(child)) {
        const LeafRecord* leaf = Nodes::AsLeaf(child);
        const bool match = Nodes::LeafMatches(leaf, key);
        const uint64_t value = leaf->value.load(std::memory_order_relaxed);
        if (!ValidateNode(node, v)) return false;
        if (match) out = value;
        *ok = match;
        return true;
      }
      const Node* next = Nodes::AsNode(child);
      uint64_t nv;
      if (ReadLockNode(next, &nv) != ReadResult::kOk) return false;
      if (!ValidateNode(node, v)) return false;
      node = next;
      v = nv;
      ++level;  // The routing byte.
    }
  }

  // --- Interleaved (AMAC-style) batched lookup ---
  //
  // Each in-flight lookup is a small state machine (a "lane"): it either
  // matches the prefix, finds and PREFETCHES the next child slot under a
  // validated snapshot, or it ENTERS the child it prefetched on its
  // previous turn (leaf: verify + read; inner: version-lock + re-validate
  // the parent) — LookupAttempt's protocol, split at the prefetch point.
  // The round-robin scheduler advances every other lane between a lane's
  // prefetch and its use, overlapping the per-level cache misses. A
  // validation failure restarts only the failing lane from the root.

  struct BatchLane {
    const Node* node = nullptr;  // Position (validated snapshot).
    void* child = nullptr;       // Prefetched slot, not yet entered.
    uint64_t v = 0;              // Version snapshot of `node`.
    uint64_t be = 0;             // Big-endian key image (the key view).
    size_t op = 0;               // Index into the caller's batch.
    size_t level = 0;            // Key bytes consumed.
    bool entering = false;       // Next step: enter `child`.
    bool active = false;
  };

  // (Re)points a lane at the root with a fresh snapshot. The root node is
  // never replaced (always a Node256), so no identity re-check is needed.
  // Named into the read-lock helper family on purpose: the open snapshot
  // it returns with is validated by the lane's next scheduler step.
  void ReadLockRootLane(BatchLane& lane) const {
    while (true) {
      uint64_t v;
      if (ReadLockNode(root_, &v) != ReadResult::kOk) continue;
      lane.node = root_;
      lane.v = v;
      lane.level = 0;
      lane.entering = false;
      return;
    }
  }

  size_t LookupBatchInterleaved(const uint64_t* keys, size_t n,
                                uint64_t* values, bool* found,
                                size_t lane_count) const {
    BatchLane lanes[kMaxBatchLanes];
    size_t next_op = 0;
    size_t active = 0;
    size_t hits = 0;

    // Finish the lane's current op and feed it the next one (re-encoding
    // the key big-endian), or park it when the batch is drained.
    auto complete = [&](BatchLane& lane, bool hit, uint64_t value) {
      found[lane.op] = hit;
      if (hit) {
        values[lane.op] = value;
        ++hits;
      }
      if (next_op < n) {
        lane.op = next_op++;
        lane.be = ToBigEndian(keys[lane.op]);
        ReadLockRootLane(lane);
      } else {
        lane.active = false;
        --active;
      }
    };

    for (size_t i = 0; i < lane_count; ++i) {
      lanes[i].op = next_op++;
      lanes[i].be = ToBigEndian(keys[lanes[i].op]);
      lanes[i].active = true;
      ReadLockRootLane(lanes[i]);
      ++active;
    }

    size_t l = 0;
    while (active > 0) {
      BatchLane& lane = lanes[l];
      l = (l + 1 == lane_count) ? 0 : l + 1;
      if (!lane.active) continue;
      const std::string_view key(reinterpret_cast<const char*>(&lane.be),
                                 8);

      if (lane.entering) {
        if (Nodes::IsLeaf(lane.child)) {
          // Lazily expanded leaf: verify the full key and read the value,
          // then re-validate the node the pointer came from (the epoch
          // guard keeps the record alive even if it raced away).
          const LeafRecord* leaf = Nodes::AsLeaf(lane.child);
          const bool match = Nodes::LeafMatches(leaf, key);
          const uint64_t value = leaf->value.load(std::memory_order_relaxed);
          if (!ValidateNode(lane.node, lane.v)) {
            ReadLockRootLane(lane);
            continue;
          }
          complete(lane, match, value);
          continue;
        }
        // Inner child: snapshot its version, then re-validate the parent
        // so the two reads are mutually consistent.
        const Node* next = Nodes::AsNode(lane.child);
        uint64_t nv;
        const bool next_locked = ReadLockNode(next, &nv) == ReadResult::kOk;
        if (!next_locked || !ValidateNode(lane.node, lane.v)) {
          ReadLockRootLane(lane);
          continue;
        }
        lane.node = next;
        lane.v = nv;
        ++lane.level;  // The routing byte.
        lane.entering = false;
        continue;
      }

      const Node* node = lane.node;
      const uint32_t matched = Nodes::MatchPrefix(node, key, lane.level);
      const uint8_t prefix_len = node->prefix_len;
      if (!ValidateNode(node, lane.v)) {
        ReadLockRootLane(lane);
        continue;
      }
      if (matched < prefix_len || lane.level + prefix_len >= key.size()) {
        complete(lane, false, 0);  // Prefix mismatch / key exhausted.
        continue;
      }
      lane.level += prefix_len;
      void* child =
          Nodes::FindChild(node, static_cast<uint8_t>(key[lane.level]));
      // Issue the prefetch now; the (possibly torn, possibly tagged) slot
      // is only chased after the validation below succeeds — and only
      // after every other lane has taken a turn, which is the latency the
      // prefetch hides.
      Nodes::PrefetchChild(child);
      if (!ValidateNode(node, lane.v)) {
        ReadLockRootLane(lane);
        continue;
      }
      if (child == nullptr) {
        complete(lane, false, 0);
        continue;
      }
      lane.child = child;
      lane.entering = true;
    }
    return hits;
  }

  bool InsertAttempt(std::string_view key, uint64_t value, bool* ok) {
    Node* parent = nullptr;
    uint64_t pv = 0;
    uint8_t parent_byte = 0;
    Node* node = root_;
    uint64_t v;
    if (ReadLockNode(node, &v) != ReadResult::kOk) return false;
    size_t level = 0;

    while (true) {
      const uint32_t matched = Nodes::MatchPrefix(node, key, level);
      const uint8_t prefix_len = node->prefix_len;
      if (!ValidateNode(node, v)) return false;

      if (matched < prefix_len) {
        // Split the compressed path: insert a Node4 above `node` holding
        // the matched part, with `node` (truncated) and the new key's leaf
        // as children. Requires parent + node exclusively.
        OPTIQL_CHECK(parent != nullptr);  // Root has no prefix.
        if (level + matched >= key.size()) {
          *ok = false;  // Would make the key a proper prefix: unsupported.
          return true;
        }
        if (!TryUpgradeNode(parent, pv, 1)) return false;
        if (!TryUpgradeNode(node, v, 0)) {
          ReleaseNode(parent, 1);
          return false;
        }

        Node* split = Nodes::NewNode(NodeType::kNode4);
        split->prefix_len = static_cast<uint8_t>(matched);
        std::memcpy(split->prefix, node->prefix, matched);
        const uint8_t node_route = node->prefix[matched];
        // Truncate node's prefix past the split point + routing byte.
        const uint8_t new_len =
            static_cast<uint8_t>(prefix_len - matched - 1);
        std::memmove(node->prefix, node->prefix + matched + 1, new_len);
        node->prefix_len = new_len;

        LeafRecord* leaf = Nodes::NewLeaf(key, value);
        Nodes::AddChild(split, node_route, node);
        // Lazy expansion: the new key's remaining bytes stay in the leaf.
        Nodes::AddChild(split, static_cast<uint8_t>(key[level + matched]),
                        Nodes::TagLeaf(leaf));
        Nodes::ReplaceChild(parent, parent_byte, split);

        size_.fetch_add(1, std::memory_order_acq_rel);
        ReleaseNode(node, 0);  // Version bump fails overlapping readers.
        ReleaseNode(parent, 1);
        *ok = true;
        return true;
      }

      level += prefix_len;
      if (level >= key.size()) {
        *ok = false;  // Key exhausted at an inner node: prefix violation.
        return true;
      }
      const uint8_t byte = static_cast<uint8_t>(key[level]);
      void* child = Nodes::FindChild(node, byte);
      Nodes::PrefetchChild(child);  // Same unvalidated-prefetch as Lookup.
      if (!ValidateNode(node, v)) return false;

      if (child == nullptr) {
        // Empty slot: add (possibly growing the node).
        if (Nodes::IsNodeFull(node)) {
          OPTIQL_CHECK(parent != nullptr);  // Root (Node256) is never full.
          if (!TryUpgradeNode(parent, pv, 1)) return false;
          if (!TryUpgradeNode(node, v, 0)) {
            ReleaseNode(parent, 1);
            return false;
          }
          Node* bigger = Nodes::GrowNode(node);
          LeafRecord* leaf = Nodes::NewLeaf(key, value);
          Nodes::AddChild(bigger, byte, Nodes::TagLeaf(leaf));  // Lazy.
          Nodes::ReplaceChild(parent, parent_byte, bigger);
          node->obsolete.store(true, std::memory_order_release);
          size_.fetch_add(1, std::memory_order_acq_rel);
          ReleaseNode(node, 0);
          ReleaseNode(parent, 1);
          Nodes::RetireNode(node);
          *ok = true;
          return true;
        }
        if (!TryUpgradeNode(node, v, 0)) return false;
        // Re-check under the lock: a racer may have added the same byte.
        if (Nodes::FindChild(node, byte) != nullptr) {
          ReleaseNode(node, 0);
          return false;
        }
        LeafRecord* leaf = Nodes::NewLeaf(key, value);
        Nodes::AddChild(node, byte, Nodes::TagLeaf(leaf));  // Lazy.
        size_.fetch_add(1, std::memory_order_acq_rel);
        ReleaseNode(node, 0);
        *ok = true;
        return true;
      }

      if (Nodes::IsLeaf(child)) {
        LeafRecord* existing = Nodes::AsLeaf(child);
        // Epoch guard keeps `existing` alive even if a racer replaces it;
        // validation below rejects stale decisions.
        if (Nodes::LeafMatches(existing, key)) {
          if (!ValidateNode(node, v)) return false;
          *ok = false;  // Key already present.
          return true;
        }
        // Diverging keys: replace the leaf with a subtree holding both.
        const size_t max_common =
            std::min<size_t>(existing->key_len, key.size());
        size_t divergence = level + 1;
        while (divergence < max_common &&
               existing->key[divergence] ==
                   static_cast<uint8_t>(key[divergence])) {
          ++divergence;
        }
        if (divergence >= max_common) {
          // One key is a prefix of the other: unsupported (prefix-free
          // constraint). Validate to make sure the conclusion is real.
          if (!ValidateNode(node, v)) return false;
          *ok = false;
          return true;
        }
        if (!TryUpgradeNode(node, v, 0)) return false;
        if (Nodes::FindChild(node, byte) != child) {  // Raced: replaced.
          ReleaseNode(node, 0);
          return false;
        }
        void* merged = Nodes::BuildDivergingPath(existing, key, value,
                                                 level + 1, divergence);
        Nodes::ReplaceChild(node, byte, merged);
        size_.fetch_add(1, std::memory_order_acq_rel);
        ReleaseNode(node, 0);
        *ok = true;
        return true;
      }

      Node* next = Nodes::AsNode(child);
      uint64_t nv;
      if (ReadLockNode(next, &nv) != ReadResult::kOk) return false;
      if (!ValidateNode(node, v)) return false;
      parent = node;
      pv = v;
      parent_byte = byte;
      node = next;
      v = nv;
      ++level;
    }
  }

  bool UpdateAttempt(std::string_view key, uint64_t value, bool* ok) {
    Node* parent = nullptr;
    uint64_t pv = 0;
    Node* node = root_;
    uint64_t v;
    if (ReadLockNode(node, &v) != ReadResult::kOk) return false;
    size_t level = 0;

    while (true) {
      const uint32_t matched = Nodes::MatchPrefix(node, key, level);
      const uint8_t prefix_len = node->prefix_len;
      if (!ValidateNode(node, v)) return false;
      if (matched < prefix_len || level + prefix_len >= key.size()) {
        *ok = false;
        return true;
      }
      level += prefix_len;
      const uint8_t byte = static_cast<uint8_t>(key[level]);

      // §6.2: at a fully materialized last level (the routing byte is the
      // key's final byte), a queue-based policy takes the lock directly —
      // the robust, collapse-free path.
      if constexpr (kQueueBased) {
        if (level + 1 == key.size()) {
          return DirectLockUpdate(node, parent, pv, key, byte, value, ok);
        }
      }

      void* child = Nodes::FindChild(node, byte);
      Nodes::PrefetchChild(child);  // Same unvalidated-prefetch as Lookup.
      if (!ValidateNode(node, v)) return false;
      if (child == nullptr) {
        *ok = false;
        return true;
      }
      if (Nodes::IsLeaf(child)) {
        LeafRecord* leaf = Nodes::AsLeaf(child);
        if (!Nodes::LeafMatches(leaf, key)) {
          if (!ValidateNode(node, v)) return false;
          *ok = false;
          return true;
        }
        // Lazily expanded leaf: promote the read to exclusive via upgrade
        // (CAS), count contention, and possibly expand the path (§6.2).
        if (!TryUpgradeNode(node, v, 0)) return false;
        if (Nodes::FindChild(node, byte) != child) {
          ReleaseNode(node, 0);
          return false;
        }
        leaf->value.store(value, std::memory_order_relaxed);
        if constexpr (kQueueBased) {
          MaybeExpandOnContention(node, byte, leaf, level);
        }
        ReleaseNode(node, 0);
        *ok = true;
        return true;
      }
      Node* next = Nodes::AsNode(child);
      uint64_t nv;
      if (ReadLockNode(next, &nv) != ReadResult::kOk) return false;
      if (!ValidateNode(node, v)) return false;
      parent = node;
      pv = v;
      node = next;
      v = nv;
      ++level;
    }
  }

  // Blocking, queue-based update of a last-level slot (OptiQL only).
  // Returns true when the operation finished (with *ok set); false to
  // restart from the root.
  bool DirectLockUpdate(Node* node, Node* parent, uint64_t pv,
                        std::string_view key, uint8_t byte, uint64_t value,
                        bool* ok) {
    node->lock.AcquireEx(ThreadQNodes::Get(0));
    if (node->obsolete.load(std::memory_order_acquire)) {
      ReleaseNode(node, 0);
      return false;
    }
    // Validate the parent linkage the same way the B+-tree protocol does
    // (Algorithm 4 step 3): if the path changed while queueing, retry.
    if (parent != nullptr && !ValidateNode(parent, pv)) {
      ReleaseNode(node, 0);
      return false;
    }
    void* child = Nodes::FindChild(node, byte);
    if (child == nullptr || !Nodes::IsLeaf(child)) {
      ReleaseNode(node, 0);
      *ok = false;
      return true;
    }
    LeafRecord* leaf = Nodes::AsLeaf(child);
    if (!Nodes::LeafMatches(leaf, key)) {
      ReleaseNode(node, 0);
      *ok = false;
      return true;
    }
    leaf->value.store(value, std::memory_order_relaxed);
    ReleaseNode(node, 0);
    *ok = true;
    return true;
  }

  // Called with `node` exclusively held after an upgrade-based update of a
  // lazily-expanded leaf: probabilistically count the contention and, past
  // the threshold, materialize the remaining path so future updates can
  // take a last-level lock directly (§6.2 "contention expansion").
  void MaybeExpandOnContention(Node* node, uint8_t byte, LeafRecord* leaf,
                               size_t level) {
    thread_local Xoshiro256 rng(0xC0117E57ULL ^
                                reinterpret_cast<uintptr_t>(&rng));
    if (rng.NextBounded(1000) >= kContentionSamplingPermille) return;
    const uint32_t counter =
        node->contention.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (counter < contention_threshold_) return;
    node->contention.store(0, std::memory_order_relaxed);

    // Materialize: replace the direct leaf pointer with a path whose last
    // node holds the leaf under its final byte.
    const size_t leaf_len = leaf->key_len;
    if (level + 1 >= leaf_len) return;  // Routing byte is already final.
    std::string_view leaf_key(reinterpret_cast<const char*>(leaf->key),
                              leaf_len);
    void* path = Nodes::BuildPathToLeaf(leaf_key, level, leaf);
    Nodes::ReplaceChild(node, byte, path);
    expansions_.fetch_add(1, std::memory_order_acq_rel);
  }

  bool RemoveAttempt(std::string_view key, bool* ok) {
    Node* parent = nullptr;
    uint64_t pv = 0;
    uint8_t parent_byte = 0;
    Node* node = root_;
    uint64_t v;
    if (ReadLockNode(node, &v) != ReadResult::kOk) return false;
    size_t level = 0;

    while (true) {
      const uint32_t matched = Nodes::MatchPrefix(node, key, level);
      const uint8_t prefix_len = node->prefix_len;
      if (!ValidateNode(node, v)) return false;
      if (matched < prefix_len || level + prefix_len >= key.size()) {
        *ok = false;
        return true;
      }
      level += prefix_len;
      const uint8_t byte = static_cast<uint8_t>(key[level]);
      void* child = Nodes::FindChild(node, byte);
      Nodes::PrefetchChild(child);  // Same unvalidated-prefetch as Lookup.
      if (!ValidateNode(node, v)) return false;
      if (child == nullptr) {
        *ok = false;
        return true;
      }
      if (Nodes::IsLeaf(child)) {
        LeafRecord* leaf = Nodes::AsLeaf(child);
        if (!Nodes::LeafMatches(leaf, key)) {
          if (!ValidateNode(node, v)) return false;
          *ok = false;
          return true;
        }
        // Plan a node shrink if this removal leaves the node underfull
        // (ART's adaptivity is symmetric: grow on insert, shrink on
        // remove). Racy count read; re-checked under the locks.
        const bool plan_shrink =
            parent != nullptr &&
            Nodes::ShrinkTarget(node->type,
                                static_cast<uint16_t>(node->count - 1)) !=
                node->type;
        if (plan_shrink) {
          if (!TryUpgradeNode(parent, pv, 1)) return false;
          if (!TryUpgradeNode(node, v, 0)) {
            ReleaseNode(parent, 1);
            return false;
          }
          if (Nodes::FindChild(node, byte) != child) {
            ReleaseNode(node, 0);
            ReleaseNode(parent, 1);
            return false;
          }
          Nodes::RemoveChild(node, byte);
          size_.fetch_sub(1, std::memory_order_acq_rel);
          const NodeType target =
              Nodes::ShrinkTarget(node->type, node->count);
          if (target != node->type) {
            Node* smaller = Nodes::CopyToType(node, target);
            Nodes::ReplaceChild(parent, parent_byte, smaller);
            node->obsolete.store(true, std::memory_order_release);
          }
          ReleaseNode(node, 0);
          ReleaseNode(parent, 1);
          if (node->obsolete.load(std::memory_order_acquire)) {
            Nodes::RetireNode(node);
          }
          Nodes::RetireLeaf(leaf);
          *ok = true;
          return true;
        }
        if (!TryUpgradeNode(node, v, 0)) return false;
        if (Nodes::FindChild(node, byte) != child) {
          ReleaseNode(node, 0);
          return false;
        }
        Nodes::RemoveChild(node, byte);
        size_.fetch_sub(1, std::memory_order_acq_rel);
        ReleaseNode(node, 0);
        Nodes::RetireLeaf(leaf);
        *ok = true;
        return true;
      }
      Node* next = Nodes::AsNode(child);
      uint64_t nv;
      if (ReadLockNode(next, &nv) != ReadResult::kOk) return false;
      if (!ValidateNode(node, v)) return false;
      parent = node;
      pv = v;
      parent_byte = byte;
      node = next;
      v = nv;
      ++level;
    }
  }

  static void CensusSubtree(const Node* node, std::array<size_t, 4>* counts) {
    ++(*counts)[static_cast<size_t>(node->type)];
    Nodes::ForEachChild(node, [&](uint8_t, void* child) {
      if (!Nodes::IsLeaf(child)) CensusSubtree(Nodes::AsNode(child), counts);
    });
  }

  const uint32_t contention_threshold_ = 1024;
  Node* const root_;
  std::atomic<size_t> size_{0};
  std::atomic<uint64_t> expansions_{0};
};

}  // namespace optiql

#endif  // OPTIQL_INDEX_ART_H_
