// OptiQL — the optimistic queuing lock (the paper's contribution, §4–§5).
//
// OptiQL extends the MCS lock with optimistic-read capabilities:
//   * Writers form a FIFO queue and spin locally (robustness + fairness).
//   * Readers never write shared memory: they snapshot the 8-byte lock word
//     and validate it after the critical section, exactly like centralized
//     optimistic locks (Algorithm 2).
//   * Because MCS-style handover keeps the word "locked" continuously,
//     a releasing writer opens an *opportunistic read* window (§5.3): it
//     publishes `OPREAD | version` on the word with one FETCH_OR; the next
//     grantee closes the window with one FETCH_AND before touching data.
//
// Lock word layout (Figure 3a, plus an obsolete marker for node retirement):
//   bit 63      LOCKED       granted to / being handed to a writer
//   bit 62      OPREAD       opportunistic-read window open
//   bits 52..61 queue-node ID of the latest writer requester (0 = none)
//   bit 51      OBSOLETE     protected object was retired (epoch reclaim)
//   bits 0..50  version
//
// The obsolete marker lives in the version field so it survives queue
// handover: a retiring releaser sets it in its qnode's version, and
// NextVersion propagates it to every successor until the final release
// publishes it on the word, permanently failing readers and upgrades.
//
// The word carries *both* the latest requester's node ID and the version.
// Carrying the version (not just the OPREAD bit) is required for
// correctness: repeated critical sections by one writer would otherwise be
// indistinguishable to a validating reader (the §5.3 ABA scenario; see
// OptiQlAbaTest).
//
// The queue node carries a version instead of MCS's `granted` flag: a
// releasing writer passes `my_version + 1` into the successor's node, which
// simultaneously grants the lock and tells the successor which version to
// publish when it releases (Algorithm 3). The lock word itself cannot be
// the version source because concurrent XCHGs overwrite it unconditionally.
#ifndef OPTIQL_CORE_OPTIQL_H_
#define OPTIQL_CORE_OPTIQL_H_

#include <atomic>
#include <cstdint>

#include "common/check.h"
#include "common/model_atomic.h"
#include "common/platform.h"
#include "qnode/qnode_pool.h"
#include "sync/lock_telemetry.h"

namespace optiql {

// `kEnableOpRead` selects between full OptiQL (true) and OptiQL-NOR (false,
// §7.1): NOR skips the two handover atomics, which helps write-only
// microbenchmarks but starves optimistic readers under contention (Table 1).
template <bool kEnableOpRead>
class BasicOptiQL {
 public:
  static constexpr uint64_t kLockedBit = 1ULL << 63;
  static constexpr uint64_t kOpReadBit = 1ULL << 62;
  static constexpr uint64_t kStatusMask = kLockedBit | kOpReadBit;
  static constexpr int kIdShift = 52;
  static constexpr uint64_t kIdMask =
      ((1ULL << QNodePool::kIdBits) - 1) << kIdShift;
  static constexpr uint64_t kVersionMask = (1ULL << kIdShift) - 1;
  static constexpr uint64_t kObsoleteBit = 1ULL << (kIdShift - 1);

  BasicOptiQL() = default;
  BasicOptiQL(const BasicOptiQL&) = delete;
  BasicOptiQL& operator=(const BasicOptiQL&) = delete;

  // --- Optimistic reader interface (Algorithm 2) ---
  //
  // Identical cost and semantics to the centralized OptLock: one load, one
  // mask, one compare. Readers may proceed when the lock is free *or* when
  // an opportunistic-read window is open (LOCKED and OPREAD both set).

  bool AcquireSh(uint64_t& v) const {
    v = word_.load(std::memory_order_acquire);
    if ((v & kStatusMask) == kLockedBit || (v & kObsoleteBit) != 0) {
      LockTelemetry::Count(LockTelemetry::kOptimisticRestart);
      return false;
    }
    return true;
  }

  bool ReleaseSh(uint64_t v) const {
    // Seqlock validation: order the caller's data reads before the
    // validating load, then require the *entire word* (status + requester
    // ID + version) to be unchanged.
    ModelThreadFence(std::memory_order_acquire);
    if (word_.load(std::memory_order_relaxed) != v) {
      LockTelemetry::Count(LockTelemetry::kOptimisticRestart);
      return false;
    }
    return true;
  }

  // --- Exclusive writer interface (Algorithm 3) ---

  // Blocking acquire. `qnode` must remain owned by this thread until the
  // matching ReleaseEx returns.
  void AcquireEx(QNode* qnode) {
    AcquireExDeferred(qnode);
    FinishAcquireEx(qnode);
  }

  // Adjustable opportunistic read (AOR, §5.3): joins the queue and blocks
  // until granted, but leaves an inherited opportunistic-read window open so
  // readers keep sneaking in. The caller MUST call FinishAcquireEx(qnode)
  // before modifying the protected data.
  void AcquireExDeferred(QNode* qnode) {
    qnode->DbgTransition(QNode::kDbgIdle, QNode::kDbgQueued,
                         "OptiQL AcquireEx with a node that is already "
                         "enqueued or not owned by this thread");
    qnode->next.store(nullptr, std::memory_order_relaxed);
    qnode->version.store(QNode::kInvalidVersion, std::memory_order_relaxed);
    qnode->aux.store(0, std::memory_order_relaxed);

    const uint64_t self =
        kLockedBit | (static_cast<uint64_t>(Pool().ToId(qnode)) << kIdShift);
    const uint64_t pred = word_.exchange(self, std::memory_order_acq_rel);
    if ((pred & kLockedBit) == 0) {
      // Lock was free: adopt version+1. The XCHG already cleared any stale
      // OPREAD/version bits, so the word is clean.
      qnode->version.store(NextVersion(pred), std::memory_order_relaxed);
      return;
    }
    // Line up behind the latest requester and spin on our own node.
    LockTelemetry::Count(LockTelemetry::kExclusiveWait);
    QNode* pred_node =
        Pool().ToPtr(static_cast<uint32_t>((pred & kIdMask) >> kIdShift));
    qnode->aux.store(kGrantedByHandover, std::memory_order_relaxed);
    pred_node->next.store(qnode, std::memory_order_release);
    SpinWait wait;
    while (qnode->version.load(std::memory_order_acquire) ==
           QNode::kInvalidVersion) {
      wait.Spin();
    }
  }

  // Closes the opportunistic-read window inherited from the releasing
  // predecessor (Algorithm 3 line 11). No-op for OptiQL-NOR and for
  // acquisitions that found the lock free.
  void FinishAcquireEx(QNode* qnode) {
    OPTIQL_INVARIANT(
        (word_.load(std::memory_order_relaxed) & kLockedBit) != 0,
        "OptiQL FinishAcquireEx but the word is not LOCKED "
        "(acquisition never happened, or already released)");
    OPTIQL_INVARIANT(qnode->version.load(std::memory_order_relaxed) !=
                         QNode::kInvalidVersion,
                     "OptiQL FinishAcquireEx before the grant completed");
    if constexpr (kEnableOpRead) {
      if (qnode->aux.load(std::memory_order_relaxed) == kGrantedByHandover) {
        word_.fetch_and(~(kOpReadBit | kVersionMask),
                        std::memory_order_acq_rel);
      }
    } else {
      (void)qnode;
    }
  }

  void ReleaseEx(QNode* qnode) {
    // MCS-style handover keeps the word LOCKED continuously from the first
    // acquisition to the final release, so an unlocked word here means the
    // caller does not hold the lock at all.
    OPTIQL_INVARIANT(
        (word_.load(std::memory_order_relaxed) & kLockedBit) != 0,
        "OptiQL ReleaseEx but the word is not LOCKED (double release?)");
    qnode->DbgTransition(QNode::kDbgQueued, QNode::kDbgIdle,
                         "OptiQL ReleaseEx with a node that is not enqueued "
                         "(double release, or released via the pool while "
                         "still holding the lock?)");
    const uint64_t self =
        kLockedBit | (static_cast<uint64_t>(Pool().ToId(qnode)) << kIdShift);
    const uint64_t my_version =
        qnode->version.load(std::memory_order_relaxed);
    OPTIQL_INVARIANT(my_version != QNode::kInvalidVersion,
                     "OptiQL ReleaseEx before the grant completed");
    if (qnode->next.load(std::memory_order_acquire) == nullptr) {
      // Word still records us as the latest requester => no successor.
      // Publish the new version and leave. (The version comes from our
      // queue node, not the word: concurrent XCHGs may clobber the word.)
      uint64_t expected = self;
      if (word_.compare_exchange_strong(expected, my_version,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
        return;
      }
    }
    if constexpr (kEnableOpRead) {
      // There is a successor: open the opportunistic-read window. The data
      // is consistent from here until the grantee's FinishAcquireEx, and the
      // word now carries (LOCKED|OPREAD, latest requester, our version) so
      // readers can snapshot and validate it (Figure 4d–e).
      word_.fetch_or(kOpReadBit | my_version, std::memory_order_release);
    }
    SpinWait wait;
    QNode* next;
    while ((next = qnode->next.load(std::memory_order_acquire)) == nullptr) {
      wait.Spin();
    }
    // Grant the successor by handing it its version (Figure 4f).
    uint64_t granted = NextVersion(my_version);
#if defined(OPTIQL_MODEL) && OPTIQL_MODEL
    // Seeded bug (model builds only): forget that NextVersion must carry
    // the obsolete marker across the handover. The checker's obsolete-
    // survival spec must catch this with a minimized schedule.
    if (model::bugs().optiql_drop_obsolete_on_handover) {
      granted &= ~kObsoleteBit;
    }
#endif
    next->version.store(granted, std::memory_order_release);
  }

  // Releases exclusive mode without bumping the version, republishing the
  // pre-acquisition snapshot. Only legal when the critical section modified
  // nothing (the latch-free in-place update path publishes the value with a
  // single atomic store instead): overlapping optimistic readers — and the
  // releasing writer's own pre-upgrade snapshot — stay valid. When a
  // successor is queued (or races in), falls back to a normal handover
  // release; the bump is harmless there because the successor is a writer
  // and will bump the version itself.
  void ReleaseExNoBump(QNode* qnode) {
    OPTIQL_INVARIANT(
        (word_.load(std::memory_order_relaxed) & kLockedBit) != 0,
        "OptiQL ReleaseExNoBump but the word is not LOCKED "
        "(double release?)");
    const uint64_t my_version =
        qnode->version.load(std::memory_order_relaxed);
    OPTIQL_INVARIANT(my_version != QNode::kInvalidVersion,
                     "OptiQL ReleaseExNoBump before the grant completed");
    OPTIQL_INVARIANT((my_version & kObsoleteBit) == 0,
                     "OptiQL ReleaseExNoBump on a retiring node: retirement "
                     "must bump (use ReleaseExObsolete)");
    if (qnode->next.load(std::memory_order_acquire) == nullptr) {
      const uint64_t self =
          kLockedBit |
          (static_cast<uint64_t>(Pool().ToId(qnode)) << kIdShift);
      // Our granted version is NextVersion(snapshot); republish the
      // snapshot itself (modular -1), exactly as the word stood before
      // TryUpgrade/AcquireEx succeeded. A free word carries pure version
      // bits, so the restored word is byte-identical to the snapshot.
      const uint64_t prev = (my_version + kVersionMask) & kVersionMask;
      uint64_t expected = self;
      if (word_.compare_exchange_strong(expected, prev,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
        qnode->DbgTransition(QNode::kDbgQueued, QNode::kDbgIdle,
                             "OptiQL ReleaseExNoBump with a node that is "
                             "not enqueued (double release?)");
        return;
      }
    }
    ReleaseEx(qnode);
  }

  // Releases exclusive mode and retires the protected object: once the
  // queue drains, every future optimistic read and upgrade fails. Queued
  // writers still drain normally (index protocols re-validate the parent
  // after acquiring a leaf directly, so they observe the unlink and abort).
  void ReleaseExObsolete(QNode* qnode) {
    OPTIQL_INVARIANT(
        (word_.load(std::memory_order_relaxed) & kLockedBit) != 0,
        "OptiQL ReleaseExObsolete but the word is not LOCKED: the obsolete "
        "marker may only be planted while holding the lock");
    qnode->version.store(
        qnode->version.load(std::memory_order_relaxed) | kObsoleteBit,
        std::memory_order_relaxed);
    ReleaseEx(qnode);
  }

  // Promotes an optimistic read snapshot `v` (taken while the lock was
  // free) directly to exclusive ownership (§6.2, used by ART). Unlike
  // OptLock's upgrade, the word is left carrying our queue node so that
  // subsequent writers line up instead of CAS-spinning.
  bool TryUpgrade(uint64_t v, QNode* qnode) {
    // Only from a free, non-retired snapshot.
    if ((v & (kStatusMask | kObsoleteBit)) != 0) return false;
    qnode->next.store(nullptr, std::memory_order_relaxed);
    qnode->aux.store(0, std::memory_order_relaxed);
    qnode->version.store(NextVersion(v), std::memory_order_relaxed);
    const uint64_t self =
        kLockedBit | (static_cast<uint64_t>(Pool().ToId(qnode)) << kIdShift);
    const bool upgraded = word_.compare_exchange_strong(
        v, self, std::memory_order_acq_rel, std::memory_order_relaxed);
    if (upgraded) {
      qnode->DbgTransition(QNode::kDbgIdle, QNode::kDbgQueued,
                           "OptiQL TryUpgrade with a node that is already "
                           "enqueued or not owned by this thread");
    }
    return upgraded;
  }

  // Non-blocking exclusive acquire from the free state.
  bool TryAcquireEx(QNode* qnode) {
    uint64_t v = word_.load(std::memory_order_relaxed);
    return (v & kStatusMask) == 0 && TryUpgrade(v, qnode);
  }

  // --- Introspection (tests/diagnostics) ---

  bool IsLockedEx() const {
    return (word_.load(std::memory_order_acquire) & kLockedBit) != 0;
  }
  bool IsOpReadWindowOpen() const {
    return (word_.load(std::memory_order_acquire) & kStatusMask) ==
           kStatusMask;
  }
  bool IsObsolete() const {
    return (word_.load(std::memory_order_acquire) & kObsoleteBit) != 0;
  }
  uint64_t LoadWord() const { return word_.load(std::memory_order_acquire); }
  static uint64_t VersionOf(uint64_t word) { return word & kVersionMask; }

 private:
  // QNode::aux marker: set when the grant arrived via queue handover (only
  // then is there an opportunistic-read window to close).
  static constexpr uint64_t kGrantedByHandover = 1;

  static QNodePool& Pool() { return QNodePool::Instance(); }

  static uint64_t NextVersion(uint64_t v) {
    return (v + 1) & kVersionMask;
  }

  ModelAtomic<uint64_t> word_{0};
};

using OptiQL = BasicOptiQL<true>;
using OptiQLNor = BasicOptiQL<false>;

static_assert(sizeof(OptiQL) == 8, "OptiQL must be one 8-byte word");

}  // namespace optiql

#endif  // OPTIQL_CORE_OPTIQL_H_
