// Guarded<T, Lock>: a typed wrapper that binds a value to one of the
// repository's optimistic locks and exposes a closure-based API, so
// application code cannot forget the validation/retry discipline.
//
//   Guarded<Config> config;
//   int port = config.WithRead([](const Config& c) { return c.port; });
//   config.WithWrite([](Config& c) { c.port = 8080; });
//
// Read closures run optimistically and are retried on validation failure,
// so they must be pure with respect to shared state: no side effects other
// than reading the protected value into locals/return values, and they must
// tolerate observing a torn T (they run before validation). Returned values
// are only published after validation succeeds.
//
// All lock access goes through TxnOps<Lock> (sync/txn_ops.h), so any lock
// family in that contract works here — the qnode-vs-plain exclusive split
// is the contract's problem, not this wrapper's.
#ifndef OPTIQL_CORE_GUARDED_H_
#define OPTIQL_CORE_GUARDED_H_

#include <utility>

#include "common/platform.h"
#include "core/optiql.h"
#include "sync/txn_ops.h"

namespace optiql {

template <class T, class Lock = OptiQL>
class Guarded {
 public:
  Guarded() = default;

  template <class... Args>
  explicit Guarded(Args&&... args) : value_(std::forward<Args>(args)...) {}

  Guarded(const Guarded&) = delete;
  Guarded& operator=(const Guarded&) = delete;

  // Runs `f(const T&)` under optimistic protection, retrying until it
  // validates, and returns f's result (computed from the validated run).
  template <class F>
  auto WithRead(F&& f) const {
    SpinWait wait;
    while (true) {
      uint64_t v;
      if (!Ops::StableVersion(lock_, v)) {
        wait.Spin();
        continue;
      }
      if constexpr (std::is_void_v<decltype(f(value_))>) {
        f(value_);
        if (Ops::ValidateVersion(lock_, v)) return;
      } else {
        auto result = f(value_);
        if (Ops::ValidateVersion(lock_, v)) return result;
      }
      wait.Spin();
    }
  }

  // Runs `f(T&)` exclusively and returns its result.
  template <class F>
  auto WithWrite(F&& f) {
    const typename Ops::ExHandle handle = Ops::LockEx(lock_, 0);
    if constexpr (std::is_void_v<decltype(f(value_))>) {
      f(value_);
      Ops::UnlockEx(lock_, handle);
    } else {
      auto result = f(value_);
      Ops::UnlockEx(lock_, handle);
      return result;
    }
  }

  // Copies the protected value out (validated).
  T Load() const {
    return WithRead([](const T& value) { return value; });
  }

  // Overwrites the protected value.
  void Store(const T& value) {
    WithWrite([&](T& slot) { slot = value; });
  }

  const Lock& lock() const { return lock_; }

 private:
  using Ops = TxnOps<Lock>;

  mutable Lock lock_;
  T value_{};
};

}  // namespace optiql

#endif  // OPTIQL_CORE_GUARDED_H_
