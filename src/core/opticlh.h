// OptiCLH — the paper's stated future work (§8): adapting the CLH queue
// lock with optimistic (and opportunistic) read capabilities, mirroring
// what OptiQL does for MCS.
//
// Same 8-byte word layout as OptiQL:
//   [63] LOCKED  [62] OPREAD  [52..61] latest requester's queue-node ID
//   [0..51] version
//
// Differences from OptiQL that fall out of CLH's structure:
//   * A waiter spins on its *predecessor's* node; the spin flag and the
//     version handover collapse into one store — the releasing holder
//     writes its version into its own node, which simultaneously unblocks
//     the successor and tells it which version to adopt. (OptiQL needs the
//     successor's node pointer for this; CLH gets it for free.)
//   * Queue nodes migrate: the successor adopts the predecessor's node, so
//     no `next` pointer and no wait-for-link step exist at all.
//   * AcquireEx returns the published node as the acquisition handle.
//
// Reader protocol, opportunistic-read window, upgrade semantics, and the
// ABA argument are identical to OptiQL (§5).
#ifndef OPTIQL_CORE_OPTICLH_H_
#define OPTIQL_CORE_OPTICLH_H_

#include <atomic>
#include <cstdint>

#include "common/check.h"
#include "common/model_atomic.h"
#include "common/platform.h"
#include "qnode/qnode_pool.h"

namespace optiql {

class OptiCLH {
 public:
  static constexpr uint64_t kLockedBit = 1ULL << 63;
  static constexpr uint64_t kOpReadBit = 1ULL << 62;
  static constexpr uint64_t kStatusMask = kLockedBit | kOpReadBit;
  static constexpr int kIdShift = 52;
  static constexpr uint64_t kIdMask =
      ((1ULL << QNodePool::kIdBits) - 1) << kIdShift;
  static constexpr uint64_t kVersionMask = (1ULL << kIdShift) - 1;

  OptiCLH() = default;
  OptiCLH(const OptiCLH&) = delete;
  OptiCLH& operator=(const OptiCLH&) = delete;

  // --- Optimistic reader interface (identical to OptiQL) ---

  bool AcquireSh(uint64_t& v) const {
    v = word_.load(std::memory_order_acquire);
    return (v & kStatusMask) != kLockedBit;
  }

  bool ReleaseSh(uint64_t v) const {
    ModelThreadFence(std::memory_order_acquire);
    return word_.load(std::memory_order_relaxed) == v;
  }

  // --- Exclusive writer interface ---

  // Blocks until granted; returns the acquisition handle to pass to
  // ReleaseEx. The handle's `aux` carries the version to publish.
  QNode* AcquireEx() {
    QNode* node = ThreadQNodeStack::Pop();
    node->DbgTransition(QNode::kDbgIdle, QNode::kDbgQueued,
                        "OptiCLH AcquireEx got a node that is already "
                        "enqueued (thread-local stack corruption?)");
    node->version.store(kSpinFlag, std::memory_order_relaxed);
    const uint64_t self =
        kLockedBit | (static_cast<uint64_t>(Pool().ToId(node)) << kIdShift);
    const uint64_t pred = word_.exchange(self, std::memory_order_acq_rel);
    if ((pred & kLockedBit) == 0) {
      // Lock was free: adopt version+1 from the word snapshot.
      node->aux.store(NextVersion(pred), std::memory_order_relaxed);
      return node;
    }
    QNode* pred_node =
        Pool().ToPtr(static_cast<uint32_t>((pred & kIdMask) >> kIdShift));
    SpinWait wait;
    uint64_t granted_version;
    while ((granted_version = pred_node->version.load(
                std::memory_order_acquire)) == kSpinFlag) {
      wait.Spin();
    }
    // The predecessor's node is ours now.
    ThreadQNodeStack::Push(pred_node);
    node->aux.store(NextVersion(granted_version), std::memory_order_relaxed);
    // Close the opportunistic-read window opened by the predecessor.
    word_.fetch_and(~(kOpReadBit | kVersionMask), std::memory_order_acq_rel);
    return node;
  }

  void ReleaseEx(QNode* node) {
    OPTIQL_INVARIANT(
        (word_.load(std::memory_order_relaxed) & kLockedBit) != 0,
        "OptiCLH ReleaseEx but the word is not LOCKED (double release?)");
    // Ownership of `node` may pass to the spinning successor below; the
    // transition must precede the abandon store (the successor adopts an
    // Idle node), and it doubles as the double-release check.
    node->DbgTransition(QNode::kDbgQueued, QNode::kDbgIdle,
                        "OptiCLH ReleaseEx with a node that is not enqueued "
                        "(double release?)");
    const uint64_t self =
        kLockedBit | (static_cast<uint64_t>(Pool().ToId(node)) << kIdShift);
    const uint64_t my_version = node->aux.load(std::memory_order_relaxed);
    uint64_t expected = self;
    if (word_.compare_exchange_strong(expected, my_version,
                                      std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
      ThreadQNodeStack::Push(node);  // No successor saw the node.
      return;
    }
    // Open the opportunistic-read window, then grant the successor: one
    // store both unblocks it and hands it our version. The node is
    // abandoned to the successor.
    word_.fetch_or(kOpReadBit | my_version, std::memory_order_release);
    node->version.store(my_version, std::memory_order_release);
  }

  // Promotes a free-state snapshot to exclusive ownership (cf. OptiQL's
  // upgrade, §6.2). Returns the acquisition handle, or nullptr on failure.
  QNode* TryUpgrade(uint64_t v) {
    if ((v & kStatusMask) != 0) return nullptr;
    QNode* node = ThreadQNodeStack::Pop();
    node->version.store(kSpinFlag, std::memory_order_relaxed);
    node->aux.store(NextVersion(v), std::memory_order_relaxed);
    const uint64_t self =
        kLockedBit | (static_cast<uint64_t>(Pool().ToId(node)) << kIdShift);
    if (word_.compare_exchange_strong(v, self, std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
      node->DbgTransition(QNode::kDbgIdle, QNode::kDbgQueued,
                          "OptiCLH TryUpgrade got a node that is already "
                          "enqueued (thread-local stack corruption?)");
      return node;
    }
    ThreadQNodeStack::Push(node);
    return nullptr;
  }

  QNode* TryAcquireEx() {
    const uint64_t v = word_.load(std::memory_order_relaxed);
    if ((v & kStatusMask) != 0) return nullptr;
    return TryUpgrade(v);
  }

  // --- Introspection ---

  bool IsLockedEx() const {
    return (word_.load(std::memory_order_acquire) & kLockedBit) != 0;
  }
  bool IsOpReadWindowOpen() const {
    return (word_.load(std::memory_order_acquire) & kStatusMask) ==
           kStatusMask;
  }
  uint64_t LoadWord() const { return word_.load(std::memory_order_acquire); }
  static uint64_t VersionOf(uint64_t word) { return word & kVersionMask; }

 private:
  // Sentinel distinct from any masked version.
  static constexpr uint64_t kSpinFlag = QNode::kInvalidVersion;

  static QNodePool& Pool() { return QNodePool::Instance(); }

  static uint64_t NextVersion(uint64_t v) { return (v + 1) & kVersionMask; }

  ModelAtomic<uint64_t> word_{0};
};

static_assert(sizeof(OptiCLH) == 8, "OptiCLH must be one 8-byte word");

}  // namespace optiql

#endif  // OPTIQL_CORE_OPTICLH_H_
