// Queue-node management for queue-based locks (OptiQL, MCS, MCS-RW).
//
// OptiQL keeps its lock word at 8 bytes by storing a *queue node ID* instead
// of a 64-bit pointer (paper §4.2/§6.3). That requires a globally accessible
// ID⇄pointer translation. Following the paper (and FOEDUS), all queue nodes
// are pre-allocated in one contiguous array so translation is plain pointer
// arithmetic; IDs are array indexes. Nodes are handed to threads in small
// blocks, cached thread-locally, and recycled on thread exit.
#ifndef OPTIQL_QNODE_QNODE_POOL_H_
#define OPTIQL_QNODE_QNODE_POOL_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/check.h"
#include "common/model_atomic.h"
#include "common/platform.h"

namespace optiql {

// One queue node = one cacheline, so local spinning on `version` never
// contends with a neighbouring thread's node.
//
// Field use by lock type:
//   OptiQL : `next` = successor node, `version` = version to adopt
//            (kInvalidVersion while waiting; the release protocol stores the
//            successor's new version here, which doubles as the grant signal).
//   MCS    : `version` = 0 while waiting, 1 once granted.
//   MCS-RW : `version` = grant/blocked flag, `aux` = packed
//            {class, successor_class} state.
struct OPTIQL_CACHELINE_ALIGNED QNode {
  static constexpr uint64_t kInvalidVersion = ~0ULL;

  ModelAtomic<QNode*> next{nullptr};
  ModelAtomic<uint64_t> version{kInvalidVersion};
  ModelAtomic<uint64_t> aux{0};

  // Ownership state for the checked-invariant build: free in the pool,
  // owned by a thread but idle, or enqueued in some lock's queue. Declared
  // unconditionally (the cacheline has 40 spare bytes, so the layout is
  // identical in every build) but only touched under
  // OPTIQL_CHECK_INVARIANTS. Catches double release, releasing a node
  // never enqueued, and returning a still-enqueued node to the pool — the
  // misuse class that otherwise shows up as a queue hang or silent
  // corruption far from the bug.
  static constexpr uint8_t kDbgPooled = 0;
  static constexpr uint8_t kDbgIdle = 1;
  static constexpr uint8_t kDbgQueued = 2;
  ModelAtomic<uint8_t> dbg_state{kDbgPooled};

  void DbgTransition(uint8_t from, uint8_t to, const char* msg) {
#if defined(OPTIQL_CHECK_INVARIANTS) && OPTIQL_CHECK_INVARIANTS
    // Ownership bookkeeping, not protocol: under the model checker the
    // exchange runs quietly (no scheduling point) so the checked build
    // explores the same interleavings as the release build.
#if defined(OPTIQL_MODEL) && OPTIQL_MODEL
    model::QuietScope quiet;
#endif
    const uint8_t prev = dbg_state.exchange(to, std::memory_order_acq_rel);
    OPTIQL_INVARIANT(prev == from, msg);
#else
    (void)from;
    (void)to;
    (void)msg;
#endif
  }

  // Returns the node to its pristine state before (re)joining a queue.
  // Deliberately leaves dbg_state alone: ownership does not change here.
  void Reset() {
#if defined(OPTIQL_MODEL) && OPTIQL_MODEL
    // Reset only touches a node the caller owns exclusively (idle, never
    // enqueued), so no other thread can observe these stores: quiet.
    model::QuietScope quiet;
#endif
    next.store(nullptr, std::memory_order_relaxed);
    version.store(kInvalidVersion, std::memory_order_relaxed);
    aux.store(0, std::memory_order_relaxed);
  }
};

static_assert(sizeof(QNode) == kCachelineSize,
              "QNode must occupy exactly one cacheline");

// Fixed-capacity pool of queue nodes with O(1) ID⇄pointer translation.
// ID 0 is reserved as the null ID so an all-zero lock word means
// "unlocked, version 0, no tail".
class QNodePool {
 public:
  // 10 ID bits in the OptiQL lock word => up to 1024 IDs; ID 0 reserved.
  static constexpr uint32_t kIdBits = 10;
  static constexpr uint32_t kDefaultCapacity = 1u << kIdBits;
  static constexpr uint32_t kNullId = 0;

  explicit QNodePool(uint32_t capacity = kDefaultCapacity);
  ~QNodePool();

  QNodePool(const QNodePool&) = delete;
  QNodePool& operator=(const QNodePool&) = delete;

  // The process-wide pool used by all locks. Never destroyed (trivial
  // teardown order issues with detached threads otherwise).
  static QNodePool& Instance();

  // Takes a free node out of the pool, reset and ready to use. Returns
  // nullptr when the pool is exhausted.
  QNode* Acquire();

  // Returns a node to the pool. The caller must no longer reference it.
  void Release(QNode* node);

  QNode* ToPtr(uint32_t id) {
    OPTIQL_CHECK(id != kNullId && id < capacity_);
    return &nodes_[id];
  }

  uint32_t ToId(const QNode* node) const {
    auto id = static_cast<uint32_t>(node - nodes_);
    OPTIQL_CHECK(id != kNullId && id < capacity_);
    return id;
  }

  uint32_t capacity() const { return capacity_; }

  // Number of nodes currently handed out (approximate under concurrency;
  // exact when quiescent). Intended for tests and diagnostics.
  uint32_t in_use() const;

 private:
  const uint32_t capacity_;
  QNode* nodes_;  // Aligned array of `capacity_` nodes; index 0 unused.

  mutable std::mutex mu_;
  std::vector<uint32_t> free_ids_;  // Guarded by mu_.
};

// Per-thread cache of queue nodes, keyed by ThreadRegistry ID. Index
// operations hold at most three queue-based locks at a time (parent + node +
// sibling during delete-time rebalancing; slots 0..2), and the transaction
// layer holds up to kMaxTxnLocks write locks at commit (slots
// kTxnSlotBase..). Nodes are lazily acquired from the global pool on first
// use and flushed back by a registry exit hook when the thread deregisters.
class ThreadQNodes {
 public:
  static constexpr int kNodesPerThread = 16;
  // Slots reserved for the txn layer (src/txn/): index ops use 0..2, so a
  // txn commit that re-enters the index still has its own disjoint range.
  static constexpr int kTxnSlotBase = 4;
  static constexpr int kMaxTxnLocks = kNodesPerThread - kTxnSlotBase;

  // Returns this thread's i-th cached queue node (0 <= i < kNodesPerThread).
  // Aborts if the global pool is exhausted: that means the system was
  // oversubscribed past the lock word's ID capacity, which the paper's
  // deployment model (threads <= hardware contexts) excludes.
  static QNode* Get(int i);
};

// Thread-local stack of owned queue nodes for locks whose queue nodes
// migrate between threads (CLH-style: a releasing holder abandons its node
// to the successor and adopts its predecessor's). Pop hands out an owned
// node (refilling from the global pool when empty); Push takes ownership
// back (spilling to the pool past a small cap). Nodes still come from the
// one contiguous pool array, so ID translation keeps working.
class ThreadQNodeStack {
 public:
  static constexpr int kMaxCached = 8;

  // Pops an owned node, reset and ready to use. Aborts if the global pool
  // is exhausted.
  static QNode* Pop();

  // Takes ownership of `node` (e.g., an adopted predecessor node).
  static void Push(QNode* node);
};

// RAII convenience for callers that want an explicit, scoped queue node
// rather than the thread-local cache (e.g., tests exercising pool pressure).
class QNodeGuard {
 public:
  explicit QNodeGuard(QNodePool& pool = QNodePool::Instance())
      : pool_(pool), node_(pool.Acquire()) {
    OPTIQL_CHECK(node_ != nullptr);
  }
  ~QNodeGuard() { pool_.Release(node_); }

  QNodeGuard(const QNodeGuard&) = delete;
  QNodeGuard& operator=(const QNodeGuard&) = delete;

  QNode* node() { return node_; }

 private:
  QNodePool& pool_;
  QNode* node_;
};

}  // namespace optiql

#endif  // OPTIQL_QNODE_QNODE_POOL_H_
