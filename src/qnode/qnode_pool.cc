#include "qnode/qnode_pool.h"

#include <cstdlib>
#include <new>

namespace optiql {

QNodePool::QNodePool(uint32_t capacity) : capacity_(capacity) {
  OPTIQL_CHECK(capacity_ >= 2);
  void* mem = std::aligned_alloc(kCachelineSize, sizeof(QNode) * capacity_);
  OPTIQL_CHECK(mem != nullptr);
  nodes_ = new (mem) QNode[capacity_];
  free_ids_.reserve(capacity_ - 1);
  // Hand out low IDs first (LIFO from the back of the vector), purely to make
  // diagnostics predictable.
  for (uint32_t id = capacity_ - 1; id >= 1; --id) {
    free_ids_.push_back(id);
  }
}

QNodePool::~QNodePool() {
  for (uint32_t i = 0; i < capacity_; ++i) nodes_[i].~QNode();
  std::free(nodes_);
}

QNodePool& QNodePool::Instance() {
  static QNodePool* pool = new QNodePool();  // Intentionally never freed.
  return *pool;
}

QNode* QNodePool::Acquire() {
  uint32_t id;
  {
    std::lock_guard<std::mutex> guard(mu_);
    if (free_ids_.empty()) return nullptr;
    id = free_ids_.back();
    free_ids_.pop_back();
  }
  QNode* node = &nodes_[id];
  node->Reset();
  return node;
}

void QNodePool::Release(QNode* node) {
  const uint32_t id = ToId(node);
  std::lock_guard<std::mutex> guard(mu_);
  free_ids_.push_back(id);
}

uint32_t QNodePool::in_use() const {
  std::lock_guard<std::mutex> guard(mu_);
  return capacity_ - 1 - static_cast<uint32_t>(free_ids_.size());
}

namespace {

// Per-thread cache; returns nodes to the global pool on thread exit.
struct ThreadQNodeCache {
  QNode* nodes[ThreadQNodes::kNodesPerThread] = {};

  ~ThreadQNodeCache() {
    for (QNode* node : nodes) {
      if (node != nullptr) QNodePool::Instance().Release(node);
    }
  }
};

thread_local ThreadQNodeCache t_qnode_cache;

}  // namespace

namespace {

struct ThreadQNodeStackCache {
  QNode* nodes[ThreadQNodeStack::kMaxCached] = {};
  int size = 0;

  ~ThreadQNodeStackCache() {
    for (int i = 0; i < size; ++i) QNodePool::Instance().Release(nodes[i]);
  }
};

thread_local ThreadQNodeStackCache t_qnode_stack;

}  // namespace

QNode* ThreadQNodeStack::Pop() {
  ThreadQNodeStackCache& cache = t_qnode_stack;
  if (cache.size > 0) {
    QNode* node = cache.nodes[--cache.size];
    node->Reset();
    return node;
  }
  QNode* node = QNodePool::Instance().Acquire();
  OPTIQL_CHECK(node != nullptr);
  return node;
}

void ThreadQNodeStack::Push(QNode* node) {
  ThreadQNodeStackCache& cache = t_qnode_stack;
  if (cache.size < kMaxCached) {
    cache.nodes[cache.size++] = node;
  } else {
    QNodePool::Instance().Release(node);
  }
}

QNode* ThreadQNodes::Get(int i) {
  OPTIQL_CHECK(i >= 0 && i < kNodesPerThread);
  QNode*& slot = t_qnode_cache.nodes[i];
  if (OPTIQL_UNLIKELY(slot == nullptr)) {
    slot = QNodePool::Instance().Acquire();
    OPTIQL_CHECK(slot != nullptr);
  }
  return slot;
}

}  // namespace optiql
