#include "qnode/qnode_pool.h"

#include <cstdlib>
#include <new>

#include "sync/thread_registry.h"

namespace optiql {

QNodePool::QNodePool(uint32_t capacity) : capacity_(capacity) {
  OPTIQL_CHECK(capacity_ >= 2);
  void* mem = std::aligned_alloc(kCachelineSize, sizeof(QNode) * capacity_);
  OPTIQL_CHECK(mem != nullptr);
  nodes_ = new (mem) QNode[capacity_];
  free_ids_.reserve(capacity_ - 1);
  // Hand out low IDs first (LIFO from the back of the vector), purely to make
  // diagnostics predictable.
  for (uint32_t id = capacity_ - 1; id >= 1; --id) {
    free_ids_.push_back(id);
  }
}

QNodePool::~QNodePool() {
  for (uint32_t i = 0; i < capacity_; ++i) nodes_[i].~QNode();
  std::free(nodes_);
}

QNodePool& QNodePool::Instance() {
  static QNodePool* pool = new QNodePool();  // Intentionally never freed.
  return *pool;
}

QNode* QNodePool::Acquire() {
  uint32_t id;
  {
    std::lock_guard<std::mutex> guard(mu_);
    if (free_ids_.empty()) return nullptr;
    id = free_ids_.back();
    free_ids_.pop_back();
  }
  QNode* node = &nodes_[id];
  node->Reset();
  node->DbgTransition(QNode::kDbgPooled, QNode::kDbgIdle,
                      "pool Acquire of a node not marked free "
                      "(free-list corruption?)");
  return node;
}

void QNodePool::Release(QNode* node) {
  const uint32_t id = ToId(node);
  node->DbgTransition(QNode::kDbgIdle, QNode::kDbgPooled,
                      "pool Release of a node that is pooled or still "
                      "enqueued (double free / free of a live queue node)");
  std::lock_guard<std::mutex> guard(mu_);
  free_ids_.push_back(id);
}

uint32_t QNodePool::in_use() const {
  std::lock_guard<std::mutex> guard(mu_);
  return capacity_ - 1 - static_cast<uint32_t>(free_ids_.size());
}

namespace {

// Per-thread queue-node cache, keyed by ThreadRegistry ID rather than a
// private thread_local: one registration path for the whole runtime. The
// registry exit hook flushes the cache back to the global pool before the
// ID becomes reusable, so a successor thread starts with an empty slot and
// pool accounting stays exact across thread churn.
struct OPTIQL_CACHELINE_ALIGNED ThreadQNodeCache {
  QNode* direct[ThreadQNodes::kNodesPerThread] = {};
  QNode* stack[ThreadQNodeStack::kMaxCached] = {};
  int stack_size = 0;
  bool exit_hook_armed = false;
};

ThreadQNodeCache g_qnode_caches[ThreadRegistry::kMaxThreads];

void FlushQNodeCache(void* arg) {
  ThreadQNodeCache& cache = *static_cast<ThreadQNodeCache*>(arg);
  QNodePool& pool = QNodePool::Instance();
  for (QNode*& node : cache.direct) {
    if (node != nullptr) {
      pool.Release(node);
      node = nullptr;
    }
  }
  for (int i = 0; i < cache.stack_size; ++i) pool.Release(cache.stack[i]);
  cache.stack_size = 0;
  cache.exit_hook_armed = false;
}

ThreadQNodeCache& LocalQNodeCache() {
  ThreadQNodeCache& cache = g_qnode_caches[ThreadRegistry::CurrentThreadId()];
  if (OPTIQL_UNLIKELY(!cache.exit_hook_armed)) {
    cache.exit_hook_armed = true;
    ThreadRegistry::AtThreadExit(&FlushQNodeCache, &cache);
  }
  return cache;
}

}  // namespace

QNode* ThreadQNodeStack::Pop() {
#if defined(OPTIQL_MODEL) && OPTIQL_MODEL
  if (QNode* node = model::ScenarioPopQNode()) return node;
#endif
  ThreadQNodeCache& cache = LocalQNodeCache();
  if (cache.stack_size > 0) {
    QNode* node = cache.stack[--cache.stack_size];
    node->Reset();
    return node;
  }
  QNode* node = QNodePool::Instance().Acquire();
  OPTIQL_CHECK(node != nullptr);
  return node;
}

void ThreadQNodeStack::Push(QNode* node) {
#if defined(OPTIQL_MODEL) && OPTIQL_MODEL
  if (model::ScenarioPushQNode(node)) return;
#endif
  ThreadQNodeCache& cache = LocalQNodeCache();
  if (cache.stack_size < kMaxCached) {
    cache.stack[cache.stack_size++] = node;
  } else {
    QNodePool::Instance().Release(node);
  }
}

QNode* ThreadQNodes::Get(int i) {
  OPTIQL_CHECK(i >= 0 && i < kNodesPerThread);
  QNode*& slot = LocalQNodeCache().direct[i];
  if (OPTIQL_UNLIKELY(slot == nullptr)) {
    slot = QNodePool::Instance().Acquire();
    OPTIQL_CHECK(slot != nullptr);
  }
  return slot;
}

}  // namespace optiql
