// Contention robustness demo (the paper's Figure 1 story, interactive):
// hammers a single hot B+-tree leaf with updates and contrasts the
// centralized optimistic lock against OptiQL, then shows what the lock
// itself experiences via the microbenchmark (CAS-retry storm vs. FIFO
// queue) and the fairness spread across threads.
//
// Build & run:  ./build/examples/contention_demo [num_threads]
#include <cstdio>
#include <cstdlib>

#include "harness/index_bench.h"
#include "harness/micro_bench.h"
#include "index/btree.h"

namespace {

using optiql::IndexWorkload;
using optiql::MicroBenchConfig;
using optiql::RunResult;

template <class Tree>
RunResult HotLeafUpdates(int threads) {
  Tree tree;
  IndexWorkload workload;
  workload.records = 100000;
  workload.lookup_pct = 0;
  workload.update_pct = 100;
  // Self-similar 0.2 over a dense keyspace: the head keys live in a
  // handful of leaves whose locks become the bottleneck.
  workload.distribution = IndexWorkload::Distribution::kSelfSimilar;
  workload.skew = 0.2;
  workload.threads = threads;
  workload.duration_ms = 500;
  PreloadIndex(tree, workload);
  return RunIndexBench(tree, workload);
}

void PrintRun(const char* name, const RunResult& result) {
  uint64_t min_ops = ~0ULL, max_ops = 0;
  for (const auto& s : result.per_thread) {
    min_ops = std::min(min_ops, s.ops);
    max_ops = std::max(max_ops, s.ops);
  }
  std::printf("  %-28s %8.2f Mops/s   fairness(Jain) %.3f   "
              "luckiest/unluckiest thread %.2fx\n",
              name, result.MopsPerSec(), result.JainFairness(),
              min_ops == 0 ? 0.0
                           : static_cast<double>(max_ops) /
                                 static_cast<double>(min_ops));
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = argc > 1 ? std::atoi(argv[1]) : 8;

  std::printf("contention_demo: %d threads updating a skewed B+-tree\n\n",
              threads);

  std::printf("[1] Index level: update-only, self-similar(0.2) keys\n");
  PrintRun("OptLock (centralized)",
           HotLeafUpdates<optiql::BTree<
               uint64_t, uint64_t, optiql::BTreeOlcPolicy>>(threads));
  PrintRun("OptiQL (queue-based)",
           HotLeafUpdates<optiql::BTree<
               uint64_t, uint64_t,
               optiql::BTreeOptiQlPolicy<optiql::OptiQL>>>(threads));

  std::printf("\n[2] Lock level: all threads on ONE lock (extreme "
              "contention, CS=50)\n");
  MicroBenchConfig config;
  config.num_locks = 1;
  config.read_pct = 0;
  config.threads = threads;
  config.duration_ms = 500;
  PrintRun("OptLock (centralized)",
           optiql::RunLockMicroBench<optiql::OptLock>(config));
  PrintRun("OptiQL (queue-based)",
           optiql::RunLockMicroBench<optiql::OptiQL>(config));

  std::printf(
      "\nOn a large multicore, the centralized lock's CAS-retry storm "
      "collapses\nits throughput and skews fairness; OptiQL's FIFO queue "
      "holds both steady\n(paper Figures 1 and 6).\n");
  return 0;
}
