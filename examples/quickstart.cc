// Quickstart: the OptiQL lock API in 5 minutes.
//
// Demonstrates (1) optimistic reads with validation, (2) queued exclusive
// writers, (3) the opportunistic-read window during writer handover, and
// (4) upgrade from an optimistic read.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <thread>
#include <vector>

#include "core/optiql.h"
#include "qnode/qnode_pool.h"

using optiql::OptiQL;
using optiql::QNode;
using optiql::ThreadQNodes;

namespace {

// A tiny bank account protected by one OptiQL lock: two balances whose sum
// must stay constant.
struct Account {
  OptiQL lock;
  long checking = 1000;
  long savings = 1000;
};

void TransferLoop(Account& account, int iterations) {
  // Writers bring a queue node; the thread-local cache hands out a stable
  // one per thread.
  QNode* qnode = ThreadQNodes::Get(0);
  for (int i = 0; i < iterations; ++i) {
    account.lock.AcquireEx(qnode);  // FIFO queue, local spinning.
    account.checking -= 1;
    account.savings += 1;
    account.lock.ReleaseEx(qnode);  // Publishes a new version.
  }
}

long ReadTotalOptimistically(const Account& account, long* attempts) {
  while (true) {
    ++*attempts;
    uint64_t version;
    if (!account.lock.AcquireSh(version)) {
      continue;  // A writer holds the lock and no handover window is open.
    }
    // Optimistic critical section: plain reads, no shared-memory writes.
    const long checking = account.checking;
    const long savings = account.savings;
    if (account.lock.ReleaseSh(version)) {
      return checking + savings;  // Validated: the snapshot is consistent.
    }
    // A writer intervened: retry.
  }
}

}  // namespace

int main() {
  std::printf("OptiQL quickstart\n=================\n\n");

  Account account;
  constexpr int kWriters = 4;
  constexpr int kTransfersPerWriter = 50000;

  std::printf("Starting %d writer threads (%d transfers each) and a "
              "concurrent optimistic reader...\n",
              kWriters, kTransfersPerWriter);

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back(TransferLoop, std::ref(account),
                         kTransfersPerWriter);
  }

  long attempts = 0;
  long consistent_reads = 0;
  for (int i = 0; i < 20000; ++i) {
    const long total = ReadTotalOptimistically(account, &attempts);
    if (total != 2000) {
      std::printf("INCONSISTENT READ: %ld\n", total);
      return 1;
    }
    ++consistent_reads;
  }
  for (auto& t : writers) t.join();

  std::printf("  reader: %ld consistent totals from %ld attempts "
              "(every validated read saw checking+savings == 2000)\n",
              consistent_reads, attempts);
  std::printf("  final balances: checking=%ld savings=%ld (sum %ld)\n",
              account.checking, account.savings,
              account.checking + account.savings);

  // Upgrade: promote an optimistic read to exclusive ownership.
  uint64_t version;
  if (account.lock.AcquireSh(version) &&
      account.lock.TryUpgrade(version, ThreadQNodes::Get(0))) {
    account.checking += 5;
    account.savings -= 5;
    account.lock.ReleaseEx(ThreadQNodes::Get(0));
    std::printf("  upgrade: promoted an optimistic read to a write, "
                "rebalanced by 5\n");
  }

  std::printf("\nDone. The same interfaces drive the B+-tree and ART "
              "indexes in src/index/.\n");
  return 0;
}
