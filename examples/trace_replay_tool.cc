// Trace workbench: generate a reproducible workload trace, save it, reload
// it, and replay it against both index families with the same op sequence —
// an apples-to-apples comparison that closed-loop benchmarks cannot give.
//
// Build & run:  ./build/examples/trace_replay_tool [ops] [threads]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "index/art.h"
#include "index/btree.h"
#include "store/sharded_store.h"
#include "workload/trace.h"
#include "workload/trace_replay.h"

namespace {

using optiql::ReplayResult;
using optiql::ReplayTrace;
using optiql::Trace;
using optiql::TraceConfig;

void PrintResult(const char* index_name, const ReplayResult& result) {
  std::printf("  %-22s %8.2f Mops/s | lookups %llu (%.1f%% hit) | "
              "inserts %llu | updates %llu | removes %llu | scans %llu "
              "(%llu pairs)\n",
              index_name, result.MopsPerSec(),
              static_cast<unsigned long long>(result.lookups),
              result.lookups == 0
                  ? 0.0
                  : 100.0 * static_cast<double>(result.lookup_hits) /
                        static_cast<double>(result.lookups),
              static_cast<unsigned long long>(result.inserts),
              static_cast<unsigned long long>(result.updates),
              static_cast<unsigned long long>(result.removes),
              static_cast<unsigned long long>(result.scans),
              static_cast<unsigned long long>(result.scanned_pairs));
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t ops = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                : 500000;
  const int threads = argc > 2 ? std::atoi(argv[2]) : 4;

  std::printf("trace_replay_tool: %llu ops, %d replay threads\n\n",
              static_cast<unsigned long long>(ops), threads);

  TraceConfig config;
  config.operations = ops;
  config.key_space = 200000;
  config.lookup_pct = 55;
  config.insert_pct = 20;
  config.update_pct = 15;
  config.remove_pct = 5;  // Remaining 5%: scans.
  config.skew = 0.2;      // 80/20 hotspots.

  std::printf("[1] Generating skewed trace (self-similar 0.2)...\n");
  const Trace trace = Trace::Generate(config);

  const std::string path = "/tmp/optiql_example.trace";
  std::printf("[2] Persist + reload round-trip via %s...\n", path.c_str());
  Trace reloaded;
  if (!trace.SaveTo(path) || !Trace::LoadFrom(path, &reloaded) ||
      !(reloaded == trace)) {
    std::printf("    trace round-trip FAILED\n");
    return 1;
  }
  std::printf("    ok (%zu ops)\n", reloaded.size());

  std::printf("[3] Replaying the identical trace against each index:\n");
  {
    optiql::BTree<uint64_t, uint64_t,
                  optiql::BTreeOptiQlPolicy<optiql::OptiQL>>
        tree;
    PrintResult("B+-tree (OptiQL)", ReplayTrace(tree, reloaded, threads));
    tree.CheckInvariants();
  }
  {
    optiql::BTree<uint64_t, uint64_t, optiql::BTreeOlcPolicy> tree;
    PrintResult("B+-tree (OptLock)", ReplayTrace(tree, reloaded, threads));
    tree.CheckInvariants();
  }
  {
    optiql::ArtTree<optiql::ArtOptiQlPolicy<optiql::OptiQL>> tree;
    PrintResult("ART (OptiQL)", ReplayTrace(tree, reloaded, threads));
    tree.CheckInvariants();
  }
  // The sharded store satisfies the same IndexOps surface, so the very
  // same replay drives it unchanged — once with the default round-robin
  // partitioning, once with key-hash partitioning (threads own disjoint
  // key sets and, since shards use the same hash family, whole shards).
  {
    optiql::ShardedStore<
        optiql::BTree<uint64_t, uint64_t,
                      optiql::BTreeOptiQlPolicy<optiql::OptiQL>>>
        store(static_cast<size_t>(threads));
    PrintResult("Sharded B+ (rrobin)",
                ReplayTrace(store, reloaded, threads));
    store.CheckInvariants();
  }
  {
    optiql::ShardedStore<
        optiql::BTree<uint64_t, uint64_t,
                      optiql::BTreeOptiQlPolicy<optiql::OptiQL>>>
        store(static_cast<size_t>(threads));
    optiql::ReplayOptions options;
    options.threads = threads;
    options.partition_by_key = true;
    PrintResult("Sharded B+ (by-key)",
                ReplayTrace(store, reloaded, options));
    store.CheckInvariants();
  }

  std::remove(path.c_str());
  std::printf("\nAll replays structurally verified.\n");
  return 0;
}
