// ART with byte-string keys: a concurrent product-catalog lookup service.
//
// SKUs are fixed-width strings like "EU-TOOL-004217"; ART's path
// compression collapses the shared region/category prefixes while lazy
// expansion keeps singleton branches cheap. Writers restock quantities
// (updates) while readers look SKUs up concurrently.
//
// Build & run:  ./build/examples/art_prefix_store
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "index/art.h"

namespace {

using Catalog = optiql::ArtTree<optiql::ArtOptiQlPolicy<optiql::OptiQL>>;

std::string MakeSku(int region, int category, int item) {
  static const char* kRegions[] = {"EU", "US", "AP"};
  static const char* kCategories[] = {"TOOL", "FOOD", "BOOK", "TOYS"};
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%s-%s-%06d", kRegions[region % 3],
                kCategories[category % 4], item);
  return buffer;
}

}  // namespace

int main() {
  std::printf("art_prefix_store: SKU catalog on OptiQL-ART\n\n");

  Catalog catalog;
  int loaded = 0;
  for (int region = 0; region < 3; ++region) {
    for (int category = 0; category < 4; ++category) {
      for (int item = 0; item < 5000; ++item) {
        const std::string sku = MakeSku(region, category, item);
        if (catalog.Insert(sku, 100)) ++loaded;  // Initial stock: 100.
      }
    }
  }
  std::printf("Loaded %d SKUs (e.g. %s); tree size %zu\n", loaded,
              MakeSku(0, 0, 4217).c_str(), catalog.Size());
  catalog.CheckInvariants();

  // Restockers update hot SKUs while browsers look up random ones.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> lookups{0}, misses{0}, restocks{0};

  std::vector<std::thread> workers;
  for (int w = 0; w < 2; ++w) {
    workers.emplace_back([&, w] {  // Restocker.
      optiql::Xoshiro256 rng(static_cast<uint64_t>(w) + 1);
      while (!stop.load(std::memory_order_acquire)) {
        // Hot items: the first 32 of EU-TOOL.
        const std::string sku =
            MakeSku(0, 0, static_cast<int>(rng.NextBounded(32)));
        if (catalog.Update(sku, 100 + rng.NextBounded(900))) {
          restocks.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int r = 0; r < 3; ++r) {
    workers.emplace_back([&, r] {  // Browser.
      optiql::Xoshiro256 rng(static_cast<uint64_t>(r) + 100);
      while (!stop.load(std::memory_order_acquire)) {
        const std::string sku =
            MakeSku(static_cast<int>(rng.NextBounded(3)),
                    static_cast<int>(rng.NextBounded(4)),
                    static_cast<int>(rng.NextBounded(6000)));  // Some miss.
        uint64_t stock = 0;
        if (catalog.Lookup(sku, stock)) {
          lookups.fetch_add(1, std::memory_order_relaxed);
        } else {
          misses.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::seconds(2));
  stop.store(true, std::memory_order_release);
  for (auto& t : workers) t.join();

  std::printf("\nAfter 2 s of concurrent traffic:\n");
  std::printf("  lookups: %llu hits, %llu misses (unlisted items)\n",
              static_cast<unsigned long long>(lookups.load()),
              static_cast<unsigned long long>(misses.load()));
  std::printf("  restocks applied: %llu\n",
              static_cast<unsigned long long>(restocks.load()));
  std::printf("  contention expansions on hot paths: %llu\n",
              static_cast<unsigned long long>(
                  catalog.ContentionExpansions()));
  catalog.CheckInvariants();
  std::printf("  invariants: OK\n");

  uint64_t stock = 0;
  const std::string probe = MakeSku(0, 0, 7);
  if (catalog.Lookup(probe, stock)) {
    std::printf("  %s -> stock %llu\n", probe.c_str(),
                static_cast<unsigned long long>(stock));
  }
  return 0;
}
