// A concurrent in-memory key-value store built on a sharded OptiQL
// B+-tree: ShardedStore hash-routes point ops across N independent trees
// (one epoch domain, per-shard indexes) and merges range scans across
// shards, so the hot 80/20 keys land on different shards instead of
// convoying on a handful of hot leaves.
//
// Simulates an OLTP-style session workload: a pool of worker threads serves
// GET/PUT/DELETE/SCAN requests against the shared store with a skewed
// (80/20) access pattern like a real cache-busting workload. Demonstrates
// the full store API including scatter-gather range scans.
//
// Build & run:  ./build/examples/kv_store [num_threads] [seconds] [--shards=N]
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "common/random.h"
#include "index/btree.h"
#include "store/sharded_store.h"
#include "workload/distributions.h"

namespace {

using Tree = optiql::BTree<uint64_t, uint64_t,
                           optiql::BTreeOptiQlPolicy<optiql::OptiQL>>;
using Store = optiql::ShardedStore<Tree>;

struct SessionStats {
  uint64_t gets = 0, hits = 0, puts = 0, deletes = 0, scans = 0,
           scanned_pairs = 0;
};

void RunSession(Store& store, int id, std::atomic<bool>& stop,
                SessionStats& stats) {
  optiql::Xoshiro256 rng(static_cast<uint64_t>(id) * 77 + 13);
  const optiql::SelfSimilarDistribution hot_keys(1000000, 0.2);
  std::vector<std::pair<uint64_t, uint64_t>> scan_buffer;
  while (!stop.load(std::memory_order_acquire)) {
    const uint64_t key = hot_keys.Next(rng);
    switch (rng.NextBounded(10)) {
      case 0:  // 10% PUT (upsert).
        store.Upsert(key, rng.Next());
        ++stats.puts;
        break;
      case 1:  // 10% DELETE.
        store.Remove(key);
        ++stats.deletes;
        break;
      case 2: {  // 10% short SCAN (merged across every shard).
        stats.scanned_pairs += store.Scan(key, 16, scan_buffer);
        ++stats.scans;
        break;
      }
      default: {  // 70% GET.
        uint64_t value = 0;
        if (store.Lookup(key, value)) ++stats.hits;
        ++stats.gets;
        break;
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  int threads = 4;
  int seconds = 2;
  size_t shards = 8;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      shards = static_cast<size_t>(std::strtoull(argv[i] + 9, nullptr, 10));
      if (shards == 0) shards = 1;
    } else if (++positional == 1) {
      threads = std::atoi(argv[i]);
    } else if (positional == 2) {
      seconds = std::atoi(argv[i]);
    }
  }

  std::printf(
      "kv_store: sharded OptiQL B+-tree KV store, %zu shards, "
      "%d worker threads, %d s\n",
      shards, threads, seconds);

  Store store(shards);
  std::printf("Loading 500000 keys...\n");
  for (uint64_t k = 0; k < 500000; ++k) {
    store.Insert(k * 2, k);  // Even keys: half the GET keyspace misses.
  }

  std::atomic<bool> stop{false};
  std::vector<SessionStats> stats(static_cast<size_t>(threads));
  std::vector<std::thread> workers;
  const auto start = std::chrono::steady_clock::now();
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back(RunSession, std::ref(store), t, std::ref(stop),
                         std::ref(stats[static_cast<size_t>(t)]));
  }
  std::this_thread::sleep_for(std::chrono::seconds(seconds));
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  SessionStats total;
  for (const auto& s : stats) {
    total.gets += s.gets;
    total.hits += s.hits;
    total.puts += s.puts;
    total.deletes += s.deletes;
    total.scans += s.scans;
    total.scanned_pairs += s.scanned_pairs;
  }
  const uint64_t ops = total.gets + total.puts + total.deletes + total.scans;
  std::printf("\nResults (%.2f s):\n", elapsed);
  std::printf("  total ops   : %llu (%.2f Mops/s)\n",
              static_cast<unsigned long long>(ops),
              static_cast<double>(ops) / elapsed / 1e6);
  std::printf("  GET         : %llu (hit rate %.1f%%)\n",
              static_cast<unsigned long long>(total.gets),
              total.gets ? 100.0 * static_cast<double>(total.hits) /
                               static_cast<double>(total.gets)
                         : 0.0);
  std::printf("  PUT         : %llu\n",
              static_cast<unsigned long long>(total.puts));
  std::printf("  DELETE      : %llu\n",
              static_cast<unsigned long long>(total.deletes));
  std::printf("  SCAN        : %llu (avg %.1f pairs)\n",
              static_cast<unsigned long long>(total.scans),
              total.scans ? static_cast<double>(total.scanned_pairs) /
                                static_cast<double>(total.scans)
                          : 0.0);
  std::printf("  store size  : %zu keys across %zu shards\n", store.Size(),
              store.ShardCount());
  for (size_t s = 0; s < store.ShardCount(); ++s) {
    std::printf("    shard %-2zu  : %zu keys, height %d\n", s,
                store.ShardAt(s).Size(), store.ShardAt(s).Height());
  }
  store.CheckInvariants();
  std::printf("  invariants  : OK\n");
  return 0;
}
