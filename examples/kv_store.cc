// A concurrent in-memory key-value store built on a sharded OptiQL
// B+-tree: ShardedStore routes point ops across N independent trees (one
// epoch domain, per-shard indexes) behind an epoch-published routing
// table, so the hot 80/20 keys land on different shards instead of
// convoying on a handful of hot leaves.
//
// Two routers (--router=hash|range):
//   hash  — full-avalanche Mix64 partitioning; scans scatter-gather and
//           merge across every shard.
//   range — contiguous key spans, one shard per span; scans touch only
//           the shards whose span intersects the range, and the store
//           supports ONLINE shard split/merge while the workload runs.
//
// Simulates an OLTP-style session workload: a pool of worker threads serves
// GET/PUT/DELETE/SCAN requests against the shared store with a skewed
// (80/20) access pattern like a real cache-busting workload.
//
// Build & run:  ./build/examples/kv_store [num_threads] [seconds]
//                   [--shards=N] [--router=hash|range] [--repl]
//
// --repl (range router only) keeps the workers running and reads reshard
// commands from stdin while ops continue:
//   stats         print throughput-so-far and the live span map
//   split <key>   online-split the span holding <key> at <key>
//   merge <key>   merge the span beginning at <key> into its left neighbor
//   quit          stop the workers and print the final report
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "index/btree.h"
#include "store/sharded_store.h"
#include "workload/distributions.h"

namespace {

using Tree = optiql::BTree<uint64_t, uint64_t,
                           optiql::BTreeOptiQlPolicy<optiql::OptiQL>>;
using HashStore = optiql::ShardedStore<Tree>;
using RangeStore = optiql::ShardedStore<Tree, optiql::RangeShardRouter>;

constexpr uint64_t kKeySpace = 1000000;  // GET/PUT keys come from [0, 1M).

struct SessionStats {
  uint64_t gets = 0, hits = 0, puts = 0, deletes = 0, scans = 0,
           scanned_pairs = 0;
};

template <class Store>
void RunSession(Store& store, int id, std::atomic<bool>& stop,
                SessionStats& stats) {
  optiql::Xoshiro256 rng(static_cast<uint64_t>(id) * 77 + 13);
  const optiql::SelfSimilarDistribution hot_keys(kKeySpace, 0.2);
  std::vector<std::pair<uint64_t, uint64_t>> scan_buffer;
  while (!stop.load(std::memory_order_acquire)) {
    const uint64_t key = hot_keys.Next(rng);
    switch (rng.NextBounded(10)) {
      case 0:  // 10% PUT (upsert).
        store.Upsert(key, rng.Next());
        ++stats.puts;
        break;
      case 1:  // 10% DELETE.
        store.Remove(key);
        ++stats.deletes;
        break;
      case 2: {  // 10% short SCAN.
        stats.scanned_pairs += store.Scan(key, 16, scan_buffer);
        ++stats.scans;
        break;
      }
      default: {  // 70% GET.
        uint64_t value = 0;
        if (store.Lookup(key, value)) ++stats.hits;
        ++stats.gets;
        break;
      }
    }
  }
}

template <class Store>
void PrintShardMap(const Store& store) {
  if constexpr (Store::kElastic) {
    const auto spans = store.SpanSnapshot();
    std::printf("  span map    : %zu spans, routing version %llu\n",
                spans.size(),
                static_cast<unsigned long long>(store.RoutingVersion()));
    for (const auto& span : spans) {
      std::printf("    [%10llu, %20llu] -> slot %-3u %zu keys\n",
                  static_cast<unsigned long long>(span.begin),
                  static_cast<unsigned long long>(span.last), span.shard,
                  span.size);
    }
  } else {
    std::printf("  shard map   : %zu hash shards\n", store.ShardCount());
    for (size_t s = 0; s < store.ShardCount(); ++s) {
      std::printf("    shard %-2zu  : %zu keys, height %d\n", s,
                  store.ShardAt(s).Size(), store.ShardAt(s).Height());
    }
  }
}

uint64_t TotalOps(const std::vector<SessionStats>& stats) {
  uint64_t ops = 0;
  for (const auto& s : stats) ops += s.gets + s.puts + s.deletes + s.scans;
  return ops;
}

// Reads reshard commands from stdin until "quit"/EOF; the workload keeps
// running the whole time — split/merge are online.
void RunRepl(RangeStore& store, const std::vector<SessionStats>& stats,
             std::chrono::steady_clock::time_point start) {
  std::printf("repl> commands: stats | split <key> | merge <key> | quit\n");
  std::string line;
  while (std::printf("repl> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    uint64_t key = 0;
    in >> cmd;
    if (cmd == "quit" || cmd == "q") break;
    if (cmd == "stats") {
      const double elapsed = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
      const uint64_t ops = TotalOps(stats);
      std::printf("  %.2f s, %llu ops (%.2f Mops/s), %zu keys\n", elapsed,
                  static_cast<unsigned long long>(ops),
                  static_cast<double>(ops) / elapsed / 1e6, store.Size());
      PrintShardMap(store);
    } else if ((cmd == "split" || cmd == "merge") && (in >> key)) {
      const auto op_start = std::chrono::steady_clock::now();
      const bool ok = cmd == "split" ? store.Split(key) : store.Merge(key);
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - op_start)
                            .count();
      if (ok) {
        std::printf("  %s @ %llu done in %.1f ms (online)\n", cmd.c_str(),
                    static_cast<unsigned long long>(key), ms);
        PrintShardMap(store);
      } else {
        std::printf("  %s @ %llu rejected (not a valid boundary)\n",
                    cmd.c_str(), static_cast<unsigned long long>(key));
      }
    } else if (!cmd.empty()) {
      std::printf("  ? unknown command '%s'\n", cmd.c_str());
    }
  }
}

template <class Store>
int RunStore(Store& store, int threads, int seconds, bool repl) {
  std::printf("Loading %llu keys...\n",
              static_cast<unsigned long long>(kKeySpace / 2));
  for (uint64_t k = 0; k < kKeySpace / 2; ++k) {
    store.Insert(k * 2, k);  // Even keys: half the GET keyspace misses.
  }

  std::atomic<bool> stop{false};
  std::vector<SessionStats> stats(static_cast<size_t>(threads));
  std::vector<std::thread> workers;
  const auto start = std::chrono::steady_clock::now();
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back(RunSession<Store>, std::ref(store), t, std::ref(stop),
                         std::ref(stats[static_cast<size_t>(t)]));
  }
  if (repl) {
    if constexpr (Store::kElastic) {
      RunRepl(store, stats, start);
    }
  } else {
    std::this_thread::sleep_for(std::chrono::seconds(seconds));
  }
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  SessionStats total;
  for (const auto& s : stats) {
    total.gets += s.gets;
    total.hits += s.hits;
    total.puts += s.puts;
    total.deletes += s.deletes;
    total.scans += s.scans;
    total.scanned_pairs += s.scanned_pairs;
  }
  const uint64_t ops = total.gets + total.puts + total.deletes + total.scans;
  std::printf("\nResults (%.2f s):\n", elapsed);
  std::printf("  total ops   : %llu (%.2f Mops/s)\n",
              static_cast<unsigned long long>(ops),
              static_cast<double>(ops) / elapsed / 1e6);
  std::printf("  GET         : %llu (hit rate %.1f%%)\n",
              static_cast<unsigned long long>(total.gets),
              total.gets ? 100.0 * static_cast<double>(total.hits) /
                               static_cast<double>(total.gets)
                         : 0.0);
  std::printf("  PUT         : %llu\n",
              static_cast<unsigned long long>(total.puts));
  std::printf("  DELETE      : %llu\n",
              static_cast<unsigned long long>(total.deletes));
  std::printf("  SCAN        : %llu (avg %.1f pairs)\n",
              static_cast<unsigned long long>(total.scans),
              total.scans ? static_cast<double>(total.scanned_pairs) /
                                static_cast<double>(total.scans)
                          : 0.0);
  std::printf("  store size  : %zu keys\n", store.Size());
  PrintShardMap(store);
  store.CheckInvariants();
  std::printf("  invariants  : OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int threads = 4;
  int seconds = 2;
  size_t shards = 8;
  bool range_router = false;
  bool repl = false;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      shards = static_cast<size_t>(std::strtoull(argv[i] + 9, nullptr, 10));
      if (shards == 0) shards = 1;
    } else if (std::strncmp(argv[i], "--router=", 9) == 0) {
      const char* name = argv[i] + 9;
      if (std::strcmp(name, "range") == 0) {
        range_router = true;
      } else if (std::strcmp(name, "hash") != 0) {
        std::fprintf(stderr, "unknown router '%s' (hash|range)\n", name);
        return 1;
      }
    } else if (std::strcmp(argv[i], "--repl") == 0) {
      repl = true;
    } else if (++positional == 1) {
      threads = std::atoi(argv[i]);
    } else if (positional == 2) {
      seconds = std::atoi(argv[i]);
    }
  }
  if (repl && !range_router) {
    std::fprintf(stderr, "--repl requires --router=range (reshard is a "
                         "range-router operation)\n");
    return 1;
  }

  std::printf(
      "kv_store: sharded OptiQL B+-tree KV store, %zu shards, "
      "%s router, %d worker threads%s\n",
      shards, range_router ? "range" : "hash", threads,
      repl ? ", repl" : "");

  if (range_router) {
    // Span the loaded keyspace evenly; keys outside it land in the last
    // span until a split moves them.
    RangeStore store(shards,
                     optiql::RangeShardRouter::EvenOver(kKeySpace, shards));
    return RunStore(store, threads, seconds, repl);
  }
  HashStore store(shards);
  return RunStore(store, threads, seconds, repl);
}
