// A concurrent in-memory key-value store built on the OptiQL B+-tree.
//
// Simulates an OLTP-style session workload: a pool of worker threads serves
// GET/PUT/DELETE/SCAN requests against a shared store, with a skewed
// (80/20) access pattern like a real cache-busting workload. Demonstrates
// the full BTree public API including range scans.
//
// Build & run:  ./build/examples/kv_store [num_threads] [seconds]
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/random.h"
#include "index/btree.h"
#include "workload/distributions.h"

namespace {

using Store = optiql::BTree<uint64_t, uint64_t,
                            optiql::BTreeOptiQlPolicy<optiql::OptiQL>>;

struct SessionStats {
  uint64_t gets = 0, hits = 0, puts = 0, deletes = 0, scans = 0,
           scanned_pairs = 0;
};

void RunSession(Store& store, int id, std::atomic<bool>& stop,
                SessionStats& stats) {
  optiql::Xoshiro256 rng(static_cast<uint64_t>(id) * 77 + 13);
  const optiql::SelfSimilarDistribution hot_keys(1000000, 0.2);
  std::vector<std::pair<uint64_t, uint64_t>> scan_buffer;
  while (!stop.load(std::memory_order_acquire)) {
    const uint64_t key = hot_keys.Next(rng);
    switch (rng.NextBounded(10)) {
      case 0:  // 10% PUT (upsert).
        store.Upsert(key, rng.Next());
        ++stats.puts;
        break;
      case 1:  // 10% DELETE.
        store.Remove(key);
        ++stats.deletes;
        break;
      case 2: {  // 10% short SCAN.
        stats.scanned_pairs += store.Scan(key, 16, scan_buffer);
        ++stats.scans;
        break;
      }
      default: {  // 70% GET.
        uint64_t value = 0;
        if (store.Lookup(key, value)) ++stats.hits;
        ++stats.gets;
        break;
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = argc > 1 ? std::atoi(argv[1]) : 4;
  const int seconds = argc > 2 ? std::atoi(argv[2]) : 2;

  std::printf("kv_store: OptiQL B+-tree KV store, %d worker threads, %d s\n",
              threads, seconds);

  Store store;
  std::printf("Loading 500000 keys...\n");
  for (uint64_t k = 0; k < 500000; ++k) {
    store.Insert(k * 2, k);  // Even keys: half the GET keyspace misses.
  }

  std::atomic<bool> stop{false};
  std::vector<SessionStats> stats(static_cast<size_t>(threads));
  std::vector<std::thread> workers;
  const auto start = std::chrono::steady_clock::now();
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back(RunSession, std::ref(store), t, std::ref(stop),
                         std::ref(stats[static_cast<size_t>(t)]));
  }
  std::this_thread::sleep_for(std::chrono::seconds(seconds));
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  SessionStats total;
  for (const auto& s : stats) {
    total.gets += s.gets;
    total.hits += s.hits;
    total.puts += s.puts;
    total.deletes += s.deletes;
    total.scans += s.scans;
    total.scanned_pairs += s.scanned_pairs;
  }
  const uint64_t ops = total.gets + total.puts + total.deletes + total.scans;
  std::printf("\nResults (%.2f s):\n", elapsed);
  std::printf("  total ops   : %llu (%.2f Mops/s)\n",
              static_cast<unsigned long long>(ops),
              static_cast<double>(ops) / elapsed / 1e6);
  std::printf("  GET         : %llu (hit rate %.1f%%)\n",
              static_cast<unsigned long long>(total.gets),
              total.gets ? 100.0 * static_cast<double>(total.hits) /
                               static_cast<double>(total.gets)
                         : 0.0);
  std::printf("  PUT         : %llu\n",
              static_cast<unsigned long long>(total.puts));
  std::printf("  DELETE      : %llu\n",
              static_cast<unsigned long long>(total.deletes));
  std::printf("  SCAN        : %llu (avg %.1f pairs)\n",
              static_cast<unsigned long long>(total.scans),
              total.scans ? static_cast<double>(total.scanned_pairs) /
                                static_cast<double>(total.scans)
                          : 0.0);
  std::printf("  store size  : %zu keys, height %d\n", store.Size(),
              store.Height());
  store.CheckInvariants();
  std::printf("  invariants  : OK\n");
  return 0;
}
